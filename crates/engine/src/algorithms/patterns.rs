//! General subgraph isomorphism for small directed patterns — the full
//! version of the paper's SI workload (triangles are one instance).
//!
//! Backtracking search with degree pruning and connected matching order:
//! after the first pattern vertex is pinned, every subsequent candidate
//! comes from the adjacency of already-matched vertices, so the search
//! never scans the whole graph per level.

use geograph::Graph;
use geograph::VertexId;

/// A small directed pattern (≤ 8 vertices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    num_vertices: usize,
    edges: Vec<(u8, u8)>,
}

impl Pattern {
    /// Builds a pattern, validating shape: ids in range, no self-loops,
    /// no duplicates, weakly connected (disconnected patterns would make
    /// the embedding count a meaningless cross product).
    pub fn new(num_vertices: usize, edges: &[(u8, u8)]) -> Self {
        assert!((1..=8).contains(&num_vertices), "patterns are small (1-8 vertices)");
        let mut seen = std::collections::HashSet::new();
        let mut adjacent = vec![false; num_vertices];
        for &(a, b) in edges {
            assert!((a as usize) < num_vertices && (b as usize) < num_vertices);
            assert_ne!(a, b, "no self-loops in patterns");
            assert!(seen.insert((a, b)), "duplicate pattern edge");
            adjacent[a as usize] = true;
            adjacent[b as usize] = true;
        }
        if num_vertices > 1 {
            assert!(adjacent.iter().all(|&x| x), "pattern has isolated vertices");
            // Weak connectivity check via union-find-ish flood.
            let mut label: Vec<usize> = (0..num_vertices).collect();
            let find = |mut x: usize, label: &Vec<usize>| -> usize {
                while label[x] != x {
                    x = label[x];
                }
                x
            };
            for &(a, b) in edges {
                let (ra, rb) = (find(a as usize, &label), find(b as usize, &label));
                if ra != rb {
                    label[ra.max(rb)] = ra.min(rb);
                }
            }
            for v in 0..num_vertices {
                assert_eq!(find(v, &label), 0, "pattern must be weakly connected");
            }
        }
        Pattern { num_vertices, edges: edges.to_vec() }
    }

    /// The directed 3-cycle `0→1→2→0`.
    pub fn triangle() -> Self {
        Pattern::new(3, &[(0, 1), (1, 2), (2, 0)])
    }

    /// A directed path with `len` edges.
    pub fn path(len: usize) -> Self {
        assert!((1..=7).contains(&len));
        let edges: Vec<(u8, u8)> = (0..len as u8).map(|i| (i, i + 1)).collect();
        Pattern::new(len + 1, &edges)
    }

    /// The directed 4-cycle `0→1→2→3→0`.
    pub fn square() -> Self {
        Pattern::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    /// An out-star: `0→1, 0→2, ..., 0→k`.
    pub fn out_star(leaves: usize) -> Self {
        assert!((1..=7).contains(&leaves));
        let edges: Vec<(u8, u8)> = (1..=leaves as u8).map(|l| (0, l)).collect();
        Pattern::new(leaves + 1, &edges)
    }

    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Out/in degree of each pattern vertex (for candidate pruning).
    fn degrees(&self) -> (Vec<usize>, Vec<usize>) {
        let mut out = vec![0; self.num_vertices];
        let mut inn = vec![0; self.num_vertices];
        for &(a, b) in &self.edges {
            out[a as usize] += 1;
            inn[b as usize] += 1;
        }
        (out, inn)
    }

    /// A matching order where every vertex after the first is adjacent to
    /// an earlier one (exists because the pattern is weakly connected).
    fn matching_order(&self) -> Vec<usize> {
        let mut order = vec![0usize];
        let mut placed = vec![false; self.num_vertices];
        placed[0] = true;
        while order.len() < self.num_vertices {
            let next = (0..self.num_vertices)
                .find(|&p| {
                    !placed[p]
                        && self.edges.iter().any(|&(a, b)| {
                            (a as usize == p && placed[b as usize])
                                || (b as usize == p && placed[a as usize])
                        })
                })
                .expect("pattern is connected");
            placed[next] = true;
            order.push(next);
        }
        order
    }
}

/// Counts injective embeddings of `pattern` in `graph` (ordered: each
/// automorphic image counts separately — e.g. a directed triangle yields
/// 3 embeddings of [`Pattern::triangle`], one per rotation).
pub fn count_embeddings(graph: &Graph, pattern: &Pattern) -> u64 {
    let (p_out, p_in) = pattern.degrees();
    let order = pattern.matching_order();
    let mut assignment: Vec<Option<VertexId>> = vec![None; pattern.num_vertices()];
    let mut count = 0u64;
    let candidate_ok = |graph: &Graph,
                        pattern: &Pattern,
                        assignment: &[Option<VertexId>],
                        p: usize,
                        g: VertexId|
     -> bool {
        if graph.out_degree(g) < p_out[p] || graph.in_degree(g) < p_in[p] {
            return false;
        }
        if assignment.contains(&Some(g)) {
            return false; // injective
        }
        // All pattern edges between p and already-assigned vertices must
        // exist in the graph.
        for &(a, b) in pattern.edges() {
            let (a, b) = (a as usize, b as usize);
            if a == p {
                if let Some(gb) = assignment[b] {
                    if !graph.has_edge(g, gb) {
                        return false;
                    }
                }
            } else if b == p {
                if let Some(ga) = assignment[a] {
                    if !graph.has_edge(ga, g) {
                        return false;
                    }
                }
            }
        }
        true
    };

    fn recurse(
        graph: &Graph,
        pattern: &Pattern,
        order: &[usize],
        level: usize,
        assignment: &mut Vec<Option<VertexId>>,
        count: &mut u64,
        candidate_ok: &impl Fn(&Graph, &Pattern, &[Option<VertexId>], usize, VertexId) -> bool,
    ) {
        if level == order.len() {
            *count += 1;
            return;
        }
        let p = order[level];
        // Candidates come from the adjacency of an already-matched pattern
        // neighbor (guaranteed to exist for level > 0 by the order).
        let candidates: Vec<VertexId> = if level == 0 {
            (0..graph.num_vertices() as VertexId).collect()
        } else {
            let mut from_neighbor: Option<Vec<VertexId>> = None;
            for &(a, b) in pattern.edges() {
                let (a, b) = (a as usize, b as usize);
                if a == p {
                    if let Some(gb) = assignment[b] {
                        from_neighbor = Some(graph.in_neighbors(gb).to_vec());
                        break;
                    }
                } else if b == p {
                    if let Some(ga) = assignment[a] {
                        from_neighbor = Some(graph.out_neighbors(ga).to_vec());
                        break;
                    }
                }
            }
            from_neighbor.expect("matching order guarantees an assigned neighbor")
        };
        for g in candidates {
            if candidate_ok(graph, pattern, assignment, p, g) {
                assignment[p] = Some(g);
                recurse(graph, pattern, order, level + 1, assignment, count, candidate_ok);
                assignment[p] = None;
            }
        }
    }

    recurse(graph, pattern, &order, 0, &mut assignment, &mut count, &candidate_ok);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::triangle_count;

    #[test]
    fn triangle_embeddings_are_three_per_cycle() {
        let g = geograph::generators::rmat(&geograph::generators::RmatConfig::social(256, 2048), 9);
        let embeddings = count_embeddings(&g, &Pattern::triangle());
        assert_eq!(embeddings, 3 * triangle_count(&g));
    }

    #[test]
    fn path_counting() {
        // 0 -> 1 -> 2 -> 3: paths of length 2: (0,1,2), (1,2,3) => 2.
        let g = geograph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_embeddings(&g, &Pattern::path(2)), 2);
        assert_eq!(count_embeddings(&g, &Pattern::path(3)), 1);
        assert_eq!(count_embeddings(&g, &Pattern::path(4)), 0);
    }

    #[test]
    fn square_counting() {
        let g = geograph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // One directed 4-cycle => 4 rotational embeddings.
        assert_eq!(count_embeddings(&g, &Pattern::square()), 4);
        assert_eq!(count_embeddings(&g, &Pattern::triangle()), 0);
    }

    #[test]
    fn out_star_counting() {
        // Vertex 0 with out-neighbors {1,2,3}: ordered pairs = 3*2 = 6.
        let g = geograph::Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(count_embeddings(&g, &Pattern::out_star(2)), 6);
        assert_eq!(count_embeddings(&g, &Pattern::out_star(3)), 6);
    }

    #[test]
    fn injectivity_enforced() {
        // 0 <-> 1: the 2-path 0->1->? can't reuse 0... it CAN: 0->1->0 is
        // not injective, so path(2) has no match.
        let g = geograph::Graph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(count_embeddings(&g, &Pattern::path(2)), 0);
        assert_eq!(count_embeddings(&g, &Pattern::path(1)), 2);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_pattern_rejected() {
        Pattern::new(4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_pattern_rejected() {
        Pattern::new(2, &[(0, 0)]);
    }
}
