//! Weighted SSSP (Dijkstra) with distance-bucketed activation rounds.
//!
//! The paper's SSSP uses unit weights (parallel label-correcting [35]);
//! real deployments also need weighted paths. To keep the traffic model
//! applicable, settles are grouped into Δ-bucketed rounds (the
//! delta-stepping view): vertices settled in bucket `i` are the round-`i`
//! changed set.

use std::collections::BinaryHeap;

use geograph::weights::EdgeWeights;
use geograph::{Graph, VertexId};

/// Distance for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// Result of a weighted SSSP run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DijkstraResult {
    pub distances: Vec<u64>,
    /// Vertices grouped by settle bucket (`dist / delta`) — the per-round
    /// changed sets for the traffic model.
    pub rounds: Vec<Vec<VertexId>>,
}

/// Runs Dijkstra from `source`, bucketing settles by `delta`.
pub fn dijkstra(
    graph: &Graph,
    weights: &EdgeWeights,
    source: VertexId,
    delta: u64,
) -> DijkstraResult {
    assert!((source as usize) < graph.num_vertices());
    assert!(delta > 0);
    let n = graph.num_vertices();
    let mut distances = vec![UNREACHABLE; n];
    distances[source as usize] = 0;
    // Max-heap of (Reverse(dist), vertex).
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, VertexId)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0), source));
    let mut settled = vec![false; n];
    let mut settles: Vec<(u64, VertexId)> = Vec::new();
    while let Some((std::cmp::Reverse(dist), v)) = heap.pop() {
        if settled[v as usize] {
            continue;
        }
        settled[v as usize] = true;
        settles.push((dist, v));
        for (k, &u) in graph.out_neighbors(v).iter().enumerate() {
            let next = dist + weights.of(graph, v, k) as u64;
            if next < distances[u as usize] {
                distances[u as usize] = next;
                heap.push((std::cmp::Reverse(next), u));
            }
        }
    }
    // Bucket settles by distance band.
    let mut rounds: Vec<Vec<VertexId>> = Vec::new();
    for (dist, v) in settles {
        let bucket = (dist / delta) as usize;
        if rounds.len() <= bucket {
            rounds.resize_with(bucket + 1, Vec::new);
        }
        rounds[bucket].push(v);
    }
    DijkstraResult { distances, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_diamond() -> (Graph, EdgeWeights) {
        // 0 ->(1) 1 ->(1) 3 ; 0 ->(5) 2 ->(1) 3
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        // edges() order: (0,1), (0,2), (1,3), (2,3)
        let w = EdgeWeights::from_vec(&g, vec![1, 5, 1, 1]);
        (g, w)
    }

    #[test]
    fn shortest_paths() {
        let (g, w) = weighted_diamond();
        let r = dijkstra(&g, &w, 0, 1);
        assert_eq!(r.distances, vec![0, 1, 5, 2]);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let g = geograph::generators::erdos_renyi(300, 1500, 4);
        let w = EdgeWeights::uniform(&g, 1);
        let source = crate::algorithms::sssp::default_source(&g);
        let d = dijkstra(&g, &w, source, 1);
        let bfs = crate::algorithms::bfs_levels(&g, source);
        for v in 0..300 {
            let expected = if bfs.distances[v] == crate::algorithms::sssp::UNREACHABLE {
                UNREACHABLE
            } else {
                bfs.distances[v] as u64
            };
            assert_eq!(d.distances[v], expected, "vertex {v}");
        }
    }

    #[test]
    fn rounds_partition_reachable_vertices() {
        let (g, w) = weighted_diamond();
        let r = dijkstra(&g, &w, 0, 2);
        let total: usize = r.rounds.iter().map(|b| b.len()).sum();
        assert_eq!(total, 4);
        // Bucket index = dist / delta.
        assert!(r.rounds[0].contains(&0) && r.rounds[0].contains(&1));
        assert!(r.rounds[1].contains(&3));
        assert!(r.rounds[2].contains(&2));
    }

    #[test]
    fn unreachable_excluded_from_rounds() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let w = EdgeWeights::uniform(&g, 2);
        let r = dijkstra(&g, &w, 0, 1);
        assert_eq!(r.distances[2], UNREACHABLE);
        let total: usize = r.rounds.iter().map(|b| b.len()).sum();
        assert_eq!(total, 2);
    }
}
