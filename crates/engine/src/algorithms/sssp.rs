//! Single-source shortest paths with unit edge weights (frontier-driven
//! label correcting — the activation pattern is what matters to the
//! traffic model).

use geograph::Graph;
use geograph::VertexId;

/// Distance assigned to unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Result of a BFS/SSSP execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// Hop distance from the source (`UNREACHABLE` if not reachable).
    pub distances: Vec<u32>,
    /// The frontier of each round: `frontiers[i]` is the set of vertices
    /// whose distance settled at round `i` (round 0 = the source). These
    /// are the *changed* sets driving activation-based traffic.
    pub frontiers: Vec<Vec<VertexId>>,
}

/// Runs unit-weight SSSP from `source` along out-edges.
pub fn bfs_levels(graph: &Graph, source: VertexId) -> BfsResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut distances = vec![UNREACHABLE; n];
    distances[source as usize] = 0;
    let mut frontiers = vec![vec![source]];
    loop {
        let current = frontiers.last().unwrap();
        let next_dist = frontiers.len() as u32;
        let mut next = Vec::new();
        for &u in current {
            for &v in graph.out_neighbors(u) {
                if distances[v as usize] == UNREACHABLE {
                    distances[v as usize] = next_dist;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontiers.push(next);
    }
    BfsResult { distances, frontiers }
}

/// Picks the paper-style default source: the vertex with the highest
/// out-degree (guarantees a non-trivial traversal on power-law graphs).
pub fn default_source(graph: &Graph) -> VertexId {
    (0..graph.num_vertices() as VertexId).max_by_key(|&v| graph.out_degree(v)).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_graph_distances() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bfs_levels(&g, 0);
        assert_eq!(r.distances, vec![0, 1, 2, 3]);
        assert_eq!(r.frontiers.len(), 4);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let r = bfs_levels(&g, 0);
        assert_eq!(r.distances[2], UNREACHABLE);
    }

    #[test]
    fn frontiers_partition_reachable_set() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let r = bfs_levels(&g, 0);
        let total: usize = r.frontiers.iter().map(|f| f.len()).sum();
        let reachable = r.distances.iter().filter(|&&d| d != UNREACHABLE).count();
        assert_eq!(total, reachable);
        // Every frontier vertex's distance equals its round index.
        for (round, frontier) in r.frontiers.iter().enumerate() {
            for &v in frontier {
                assert_eq!(r.distances[v as usize], round as u32);
            }
        }
    }

    #[test]
    fn respects_edge_direction() {
        let g = Graph::from_edges(2, &[(1, 0)]);
        let r = bfs_levels(&g, 0);
        assert_eq!(r.distances[1], UNREACHABLE);
    }

    #[test]
    fn default_source_is_max_out_degree() {
        let g = Graph::from_edges(4, &[(2, 0), (2, 1), (2, 3), (0, 1)]);
        assert_eq!(default_source(&g), 2);
    }
}
