//! The three evaluation algorithms, as pure computations on the logical
//! graph. Traffic attribution happens in [`crate::runner`].

pub mod dijkstra;
pub mod pagerank;
pub mod patterns;
pub mod sssp;
pub mod triangles;
pub mod wcc;

pub use dijkstra::{dijkstra, DijkstraResult};
pub use pagerank::pagerank;
pub use patterns::{count_embeddings, Pattern};
pub use sssp::{bfs_levels, BfsResult};
pub use triangles::triangle_count;
pub use wcc::{wcc, WccResult};
