//! PageRank (Brin & Page '98): the all-active workload.

use geograph::Graph;
use geograph::VertexId;

/// Computes PageRank with the standard power iteration.
///
/// Dangling mass is redistributed uniformly so ranks always sum to 1 —
/// the invariant the tests (and proptest) check.
pub fn pagerank(graph: &Graph, iterations: usize, damping: f64) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    assert!((0.0..=1.0).contains(&damping));
    let uniform = 1.0 / n as f64;
    let mut ranks = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|r| *r = 0.0);
        let mut dangling = 0.0f64;
        for u in 0..n as VertexId {
            let out = graph.out_degree(u);
            if out == 0 {
                dangling += ranks[u as usize];
            } else {
                let share = ranks[u as usize] / out as f64;
                for &v in graph.out_neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let dangling_share = dangling / n as f64;
        for r in next.iter_mut() {
            *r = (1.0 - damping) * uniform + damping * (*r + dangling_share);
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_sum_to_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let ranks = pagerank(&g, 20, 0.85);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn sink_vertex_accumulates_rank() {
        // 0 -> 2, 1 -> 2: vertex 2 should outrank the sources.
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let ranks = pagerank(&g, 30, 0.85);
        assert!(ranks[2] > ranks[0] && ranks[2] > ranks[1]);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let ranks = pagerank(&g, 50, 0.85);
        for r in &ranks {
            assert!((r - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_iterations_returns_uniform() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(pagerank(&g, 0, 0.85), vec![0.5, 0.5]);
    }

    #[test]
    fn dangling_mass_preserved() {
        // 0 -> 1, vertex 1 dangles.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let ranks = pagerank(&g, 40, 0.85);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(ranks[1] > ranks[0]);
    }
}
