//! Directed triangle counting — the concrete pattern behind the paper's
//! Subgraph Isomorphism workload (matching the 3-cycle `u→v→w→u`).

use geograph::Graph;
use geograph::VertexId;

/// Counts directed 3-cycles `u → v → w → u`. Each cycle is counted once
/// (anchored at its smallest vertex id).
pub fn triangle_count(graph: &Graph) -> u64 {
    let mut count = 0u64;
    for u in 0..graph.num_vertices() as VertexId {
        for &v in graph.out_neighbors(u) {
            if v <= u {
                continue; // anchor at the smallest id: require u < v, u < w
            }
            for &w in graph.out_neighbors(v) {
                if w > u && w != v && graph.has_edge(w, u) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn no_cycle_in_dag() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn reverse_cycle_also_counts() {
        let g = Graph::from_edges(3, &[(0, 2), (2, 1), (1, 0)]);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn both_orientations_count_twice() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2), (2, 1), (1, 0)]);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn disjoint_cycles_sum() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn two_cycle_is_not_a_triangle() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(triangle_count(&g), 0);
    }
}
