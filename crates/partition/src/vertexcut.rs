//! Vertex-cut placement: explicit per-edge DC assignment, full-GAS
//! computation for every vertex (PowerGraph §II-B).

use geograph::GeoGraph;
use geosim::CloudEnv;

use crate::error::PlanError;
use crate::kernel::MoveScratch;
use crate::profile::TrafficProfile;
use crate::state::{Objective, PlacementState};
use crate::{DcId, VertexId};

/// How vertex-cut picks the master replica of each vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterRule {
    /// The replica DC holding the most of the vertex's edges (lowest id
    /// breaks ties). What PowerGraph-style systems converge to with their
    /// "most work local" heuristic.
    HeaviestReplica,
    /// The vertex's natural (home) DC if it hosts any of the vertex's
    /// edges, else the heaviest replica. Avoids charging movement cost
    /// when data never had to move.
    PreferNatural,
    /// Always the natural DC, even when it holds none of the vertex's
    /// edges (the vertex data simply never moves). Used by partitioners
    /// whose budget reasoning assumes immovable masters (Geo-Cut).
    Natural,
}

/// Vertex-cut placement state: a wrapper over [`PlacementState`] with every
/// vertex treated as high-degree (full GAS — gather from every edge-holding
/// DC, apply to every mirror).
#[derive(Clone, Debug)]
pub struct VertexCutState {
    core: PlacementState,
    /// DC of every edge, aligned with `graph.edges()` order.
    edge_dcs: Vec<DcId>,
}

impl VertexCutState {
    /// Builds vertex-cut state from a per-edge DC assignment aligned with
    /// `geo.graph.edges()` order, panicking on an out-of-range DC. External
    /// plan input goes through [`Self::try_from_edge_assignment`].
    pub fn from_edge_assignment(
        geo: &GeoGraph,
        env: &CloudEnv,
        edge_dcs: &[DcId],
        master_rule: MasterRule,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        Self::try_from_edge_assignment(geo, env, edge_dcs, master_rule, profile, num_iterations)
            .unwrap_or_else(|e| panic!("invalid edge assignment: {e}"))
    }

    /// Builds vertex-cut state from a per-edge DC assignment, returning a
    /// typed [`PlanError`] when any edge names a DC outside the environment.
    pub fn try_from_edge_assignment(
        geo: &GeoGraph,
        env: &CloudEnv,
        edge_dcs: &[DcId],
        master_rule: MasterRule,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Result<Self, PlanError> {
        assert_eq!(edge_dcs.len(), geo.num_edges());
        let n = geo.num_vertices();
        let m = env.num_dcs();
        // First pass: per-vertex edge counts per DC, to derive masters.
        // Validates every DC id before any indexing happens.
        let mut incident = vec![0u32; n * m];
        for ((u, v), &d) in geo.graph.edges().zip(edge_dcs) {
            if d as usize >= m {
                return Err(PlanError::EdgeDcOutOfRange { src: u, dst: v, dc: d, num_dcs: m });
            }
            incident[u as usize * m + d as usize] += 1;
            incident[v as usize * m + d as usize] += 1;
        }
        let masters: Vec<DcId> = (0..n)
            .map(|v| {
                let row = &incident[v * m..(v + 1) * m];
                let natural = geo.locations[v];
                if master_rule == MasterRule::Natural
                    || (master_rule == MasterRule::PreferNatural && row[natural as usize] > 0)
                {
                    return natural;
                }
                let mut best = natural as usize; // isolated vertices stay home
                let mut best_cnt = 0u32;
                for (d, &c) in row.iter().enumerate() {
                    if c > best_cnt {
                        best = d;
                        best_cnt = c;
                    }
                }
                best as DcId
            })
            .collect();
        let core = PlacementState::from_edge_placement(
            env,
            n,
            geo.graph.edges().zip(edge_dcs).map(|((u, v), &d)| (u, v, d)),
            masters,
            vec![true; n], // every vertex runs full GAS under vertex-cut
            &geo.locations,
            &geo.data_sizes,
            profile,
            num_iterations,
        )?;
        Ok(VertexCutState { core, edge_dcs: edge_dcs.to_vec() })
    }

    /// The underlying placement state.
    pub fn core(&self) -> &PlacementState {
        &self.core
    }

    /// DC of every edge, aligned with `graph.edges()` order.
    pub fn edge_dcs(&self) -> &[DcId] {
        &self.edge_dcs
    }

    /// Per-in-edge DC assignment aligned with the in-CSR layout: entry
    /// `graph.in_edge_offset(v) + k` is the DC of the edge from
    /// `graph.in_neighbors(v)[k]` to `v`. Used by the analytics engine to
    /// attribute gather traffic to the DCs actually holding the in-edges.
    /// The cursor plane rides the substrate's narrow-offset invariant:
    /// every graph the workspace builds caps kept edges at `u32` range,
    /// so the transient scatter cursors stay `u32` too (half the
    /// transient of a `usize` plane at paper scale).
    pub fn in_edge_dcs(&self, geo: &GeoGraph) -> Vec<DcId> {
        debug_assert!(geo.num_edges() <= u32::MAX as usize);
        let mut out = vec![0 as DcId; geo.num_edges()];
        let mut cursor: Vec<u32> = (0..geo.num_vertices() as VertexId)
            .map(|v| geo.graph.in_edge_offset(v) as u32)
            .collect();
        for ((_, v), &d) in geo.graph.edges().zip(&self.edge_dcs) {
            out[cursor[v as usize] as usize] = d;
            cursor[v as usize] += 1;
        }
        out
    }

    /// Current objective.
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        self.core.objective(env)
    }

    /// Replication factor λ (Fig 2).
    pub fn replication_factor(&self) -> f64 {
        self.core.replication_factor()
    }

    /// Master of `v`.
    pub fn master(&self, v: VertexId) -> DcId {
        self.core.master(v)
    }

    /// Evaluates re-homing `v`'s master to **every** DC in one batched
    /// kernel sweep. Under vertex-cut a master move leaves all edges in
    /// place, so the staged count deltas are empty — only the gather/apply
    /// message endpoints and the Eq 4 movement cost change. The result
    /// slice lives in `scratch`, indexed by destination DC.
    pub fn evaluate_all_moves<'s>(
        &self,
        geo: &GeoGraph,
        env: &CloudEnv,
        v: VertexId,
        scratch: &'s mut MoveScratch,
    ) -> &'s [Objective] {
        scratch.begin_stage();
        self.core.evaluate_all_moves(env, v, scratch);
        let a = self.core.master(v);
        let loc = geo.locations[v as usize];
        let size = geo.data_sizes[v as usize];
        let base = self.core.movement_cost - geosim::cost::vertex_move_cost(env, loc, a, size);
        for (d, obj) in scratch.objectives_mut().iter_mut().enumerate() {
            if d != a as usize {
                obj.movement_cost =
                    base + geosim::cost::vertex_move_cost(env, loc, d as DcId, size);
            }
        }
        scratch.objectives()
    }

    /// Re-homes `v`'s master to `to`, leaving every edge in place.
    pub fn apply_master_move(&mut self, geo: &GeoGraph, env: &CloudEnv, v: VertexId, to: DcId) {
        let a = self.core.master(v);
        if a == to {
            return;
        }
        self.core.remove_vertex_loads(v);
        let loc = geo.locations[v as usize];
        let size = geo.data_sizes[v as usize];
        self.core.movement_cost += geosim::cost::vertex_move_cost(env, loc, to, size)
            - geosim::cost::vertex_move_cost(env, loc, a, size);
        self.core.masters[v as usize] = to;
        self.core.meta[v as usize].master = to;
        self.core.add_vertex_loads(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), 21);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(21));
        (geo, ec2_eight_regions())
    }

    #[test]
    fn random_assignment_builds() {
        let (geo, env) = setup();
        let edge_dcs: Vec<DcId> =
            (0..geo.num_edges()).map(|i| (geograph::fxhash::mix64(i as u64) % 8) as DcId).collect();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = VertexCutState::from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            MasterRule::HeaviestReplica,
            profile,
            10.0,
        );
        assert!(s.replication_factor() >= 1.0);
        let obj = s.objective(&env);
        assert!(obj.transfer_time > 0.0);
    }

    #[test]
    fn single_dc_assignment_is_traffic_free() {
        let (geo, env) = setup();
        let edge_dcs = vec![0 as DcId; geo.num_edges()];
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = VertexCutState::from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            MasterRule::HeaviestReplica,
            profile,
            10.0,
        );
        assert_eq!(s.objective(&env).transfer_time, 0.0);
        assert!((s.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefer_natural_reduces_movement_cost() {
        let (geo, env) = setup();
        let edge_dcs: Vec<DcId> = (0..geo.num_edges())
            .map(|i| (geograph::fxhash::mix64(i as u64 ^ 5) % 8) as DcId)
            .collect();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let heaviest = VertexCutState::from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            MasterRule::HeaviestReplica,
            profile.clone(),
            10.0,
        );
        let natural = VertexCutState::from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            MasterRule::PreferNatural,
            profile,
            10.0,
        );
        assert!(natural.objective(&env).movement_cost <= heaviest.objective(&env).movement_cost);
    }

    #[test]
    fn master_move_evaluation_matches_application() {
        let (geo, env) = setup();
        let edge_dcs: Vec<DcId> = (0..geo.num_edges())
            .map(|i| (geograph::fxhash::mix64(i as u64 ^ 13) % 8) as DcId)
            .collect();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = VertexCutState::from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            MasterRule::HeaviestReplica,
            profile,
            10.0,
        );
        let mut scratch = MoveScratch::new();
        for v in [0 as VertexId, 5, 17, 100, 511] {
            let objs = s.evaluate_all_moves(&geo, &env, v, &mut scratch).to_vec();
            for to in 0..env.num_dcs() as DcId {
                let mut trial = s.clone();
                trial.apply_master_move(&geo, &env, v, to);
                let actual = trial.objective(&env);
                let predicted = objs[to as usize];
                assert!(
                    (predicted.transfer_time - actual.transfer_time).abs()
                        <= 1e-9 * actual.transfer_time.max(1e-12),
                    "v={v} to={to}: predicted {} vs actual {}",
                    predicted.transfer_time,
                    actual.transfer_time
                );
                assert!(
                    (predicted.total_cost() - actual.total_cost()).abs()
                        <= 1e-9 * actual.total_cost().max(1e-12),
                    "v={v} to={to}: predicted cost {} vs actual {}",
                    predicted.total_cost(),
                    actual.total_cost()
                );
            }
        }
    }

    #[test]
    fn out_of_range_edge_dc_is_typed_error() {
        let (geo, env) = setup();
        let mut edge_dcs = vec![0 as DcId; geo.num_edges()];
        edge_dcs[3] = 200;
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let err = VertexCutState::try_from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            MasterRule::HeaviestReplica,
            profile,
            10.0,
        )
        .map(|_| ())
        .unwrap_err();
        match err {
            PlanError::EdgeDcOutOfRange { dc: 200, num_dcs: 8, .. } => {}
            other => panic!("expected edge-DC-out-of-range, got {other:?}"),
        }
    }

    #[test]
    fn masters_are_replica_dcs() {
        let (geo, env) = setup();
        let edge_dcs: Vec<DcId> = (0..geo.num_edges())
            .map(|i| (geograph::fxhash::mix64(i as u64 ^ 9) % 8) as DcId)
            .collect();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = VertexCutState::from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            MasterRule::HeaviestReplica,
            profile,
            10.0,
        );
        for v in 0..geo.num_vertices() as VertexId {
            if geo.graph.degree(v) > 0 {
                let m = s.master(v);
                assert!(
                    s.core().in_count(v, m) + s.core().out_count(v, m) > 0,
                    "master of {v} holds none of its edges"
                );
            }
        }
    }
}
