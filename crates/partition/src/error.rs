//! Typed plan-validation errors.
//!
//! [`HybridState::validate_plan`](crate::HybridState::validate_plan) and the
//! fault-aware checks return these instead of panicking, so recovery code
//! (evacuation, checkpoint restore) can react to a broken plan rather than
//! aborting the process.

use crate::{DcId, VertexId};

/// Why a placement plan failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// An incremental count array no longer matches a fresh rebuild.
    CountDrift {
        /// Which array drifted (`"in_cnt"`, `"out_cnt"`).
        array: &'static str,
        /// First vertex whose row differs.
        vertex: VertexId,
        /// First DC column that differs.
        dc: DcId,
        /// Incrementally maintained value.
        incremental: u32,
        /// Value after a from-scratch rebuild.
        fresh: u32,
    },
    /// The per-DC edge balance no longer matches a fresh rebuild.
    EdgeBalanceDrift {
        /// First DC whose edge count differs.
        dc: DcId,
        incremental: u64,
        fresh: u64,
    },
    /// A gather/apply load accumulator drifted beyond fp tolerance.
    LoadDrift {
        /// Which accumulator drifted (`"gather.up"`, `"apply.down"`, …).
        stage: &'static str,
        dc: DcId,
        incremental: f64,
        fresh: f64,
    },
    /// The incrementally tracked Eq 4 movement cost drifted.
    MovementCostDrift { incremental: f64, fresh: f64 },
    /// A vertex's packed kernel metadata (occupancy mask or mirrored
    /// master copy) no longer matches the authoritative arrays.
    MetaDrift {
        /// Which field drifted (`"nnz"`, `"master"`).
        field: &'static str,
        /// First vertex whose record differs.
        vertex: VertexId,
        /// Incrementally maintained value (masks verbatim, masters widened).
        incremental: u64,
        /// Authoritative value.
        fresh: u64,
    },
    /// The batched one-sweep kernel disagreed with an independent
    /// single-destination evaluation (bit-level comparison).
    KernelDivergence { vertex: VertexId, dc: DcId },
    /// A vertex's master sits on a DC that is currently dark.
    MasterOnDeadDc { vertex: VertexId, dc: DcId },
    /// A vertex has a mirror on a DC that is currently dark.
    MirrorOnDeadDc { vertex: VertexId, dc: DcId },
    /// Every DC is dark — there is nowhere to evacuate to.
    NoLiveDc,
    /// An edge placement names a DC outside the environment.
    EdgeDcOutOfRange {
        src: VertexId,
        dst: VertexId,
        /// The out-of-range DC id the plan assigned the edge to.
        dc: DcId,
        num_dcs: usize,
    },
    /// An edge placement names a vertex outside the graph.
    VertexOutOfRange { vertex: VertexId, num_vertices: usize },
    /// A master assignment names a DC outside the environment.
    MasterOutOfRange { vertex: VertexId, dc: DcId, num_dcs: usize },
    /// The environment has more DCs than replica bitmasks can hold.
    TooManyDcs { num_dcs: usize, max: usize },
    /// A graph delta does not line up with the state it is applied to
    /// (wrong base vertex count, wrong successor graph, short profile).
    DeltaMismatch {
        /// Which quantity disagreed (`"old vertex count"`, …).
        what: &'static str,
        expected: usize,
        found: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::CountDrift { array, vertex, dc, incremental, fresh } => write!(
                f,
                "{array}[v={vertex}, dc={dc}] diverged: incremental {incremental} vs fresh {fresh}"
            ),
            PlanError::EdgeBalanceDrift { dc, incremental, fresh } => write!(
                f,
                "edge balance at DC {dc} diverged: incremental {incremental} vs fresh {fresh}"
            ),
            PlanError::LoadDrift { stage, dc, incremental, fresh } => {
                write!(f, "{stage}[{dc}] diverged: incremental {incremental} vs fresh {fresh}")
            }
            PlanError::MovementCostDrift { incremental, fresh } => {
                write!(f, "movement cost diverged: incremental {incremental} vs fresh {fresh}")
            }
            PlanError::MetaDrift { field, vertex, incremental, fresh } => write!(
                f,
                "kernel meta {field}[v={vertex}] diverged: incremental {incremental:#x} vs \
                 authoritative {fresh:#x}"
            ),
            PlanError::KernelDivergence { vertex, dc } => {
                write!(f, "batched vs sequential evaluation diverged at v={vertex} d={dc}")
            }
            PlanError::MasterOnDeadDc { vertex, dc } => {
                write!(f, "master of v={vertex} sits on dead DC {dc}")
            }
            PlanError::MirrorOnDeadDc { vertex, dc } => {
                write!(f, "mirror of v={vertex} sits on dead DC {dc}")
            }
            PlanError::NoLiveDc => write!(f, "every DC is dark: nowhere to evacuate to"),
            PlanError::EdgeDcOutOfRange { src, dst, dc, num_dcs } => write!(
                f,
                "edge {src}->{dst} placed at DC {dc}, but the environment has only {num_dcs} DCs"
            ),
            PlanError::VertexOutOfRange { vertex, num_vertices } => write!(
                f,
                "plan names vertex {vertex}, but the graph has only {num_vertices} vertices"
            ),
            PlanError::MasterOutOfRange { vertex, dc, num_dcs } => write!(
                f,
                "master of v={vertex} is DC {dc}, but the environment has only {num_dcs} DCs"
            ),
            PlanError::TooManyDcs { num_dcs, max } => write!(
                f,
                "environment has {num_dcs} DCs but replica sets are u64 bitmasks (max {max})"
            ),
            PlanError::DeltaMismatch { what, expected, found } => {
                write!(f, "delta mismatch: {what} expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for PlanError {}
