//! Typed plan-validation errors.
//!
//! [`HybridState::validate_plan`](crate::HybridState::validate_plan) and the
//! fault-aware checks return these instead of panicking, so recovery code
//! (evacuation, checkpoint restore) can react to a broken plan rather than
//! aborting the process.

use crate::{DcId, VertexId};

/// Why a placement plan failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// An incremental count array no longer matches a fresh rebuild.
    CountDrift {
        /// Which array drifted (`"in_cnt"`, `"out_cnt"`).
        array: &'static str,
        /// First vertex whose row differs.
        vertex: VertexId,
        /// First DC column that differs.
        dc: DcId,
        /// Incrementally maintained value.
        incremental: u32,
        /// Value after a from-scratch rebuild.
        fresh: u32,
    },
    /// The per-DC edge balance no longer matches a fresh rebuild.
    EdgeBalanceDrift {
        /// First DC whose edge count differs.
        dc: DcId,
        incremental: u64,
        fresh: u64,
    },
    /// A gather/apply load accumulator drifted beyond fp tolerance.
    LoadDrift {
        /// Which accumulator drifted (`"gather.up"`, `"apply.down"`, …).
        stage: &'static str,
        dc: DcId,
        incremental: f64,
        fresh: f64,
    },
    /// The incrementally tracked Eq 4 movement cost drifted.
    MovementCostDrift { incremental: f64, fresh: f64 },
    /// The batched one-sweep kernel disagreed with an independent
    /// single-destination evaluation (bit-level comparison).
    KernelDivergence { vertex: VertexId, dc: DcId },
    /// A vertex's master sits on a DC that is currently dark.
    MasterOnDeadDc { vertex: VertexId, dc: DcId },
    /// A vertex has a mirror on a DC that is currently dark.
    MirrorOnDeadDc { vertex: VertexId, dc: DcId },
    /// Every DC is dark — there is nowhere to evacuate to.
    NoLiveDc,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::CountDrift { array, vertex, dc, incremental, fresh } => write!(
                f,
                "{array}[v={vertex}, dc={dc}] diverged: incremental {incremental} vs fresh {fresh}"
            ),
            PlanError::EdgeBalanceDrift { dc, incremental, fresh } => write!(
                f,
                "edge balance at DC {dc} diverged: incremental {incremental} vs fresh {fresh}"
            ),
            PlanError::LoadDrift { stage, dc, incremental, fresh } => {
                write!(f, "{stage}[{dc}] diverged: incremental {incremental} vs fresh {fresh}")
            }
            PlanError::MovementCostDrift { incremental, fresh } => {
                write!(f, "movement cost diverged: incremental {incremental} vs fresh {fresh}")
            }
            PlanError::KernelDivergence { vertex, dc } => {
                write!(f, "batched vs sequential evaluation diverged at v={vertex} d={dc}")
            }
            PlanError::MasterOnDeadDc { vertex, dc } => {
                write!(f, "master of v={vertex} sits on dead DC {dc}")
            }
            PlanError::MirrorOnDeadDc { vertex, dc } => {
                write!(f, "mirror of v={vertex} sits on dead DC {dc}")
            }
            PlanError::NoLiveDc => write!(f, "every DC is dark: nowhere to evacuate to"),
        }
    }
}

impl std::error::Error for PlanError {}
