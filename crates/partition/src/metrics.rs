//! Cross-model partition quality metrics.

/// Load imbalance of a per-partition count vector: `max / mean`. 1.0 is
/// perfectly balanced; traditional partitioners constrain this, while the
/// paper argues balance alone doesn't imply geo-distributed performance.
pub fn imbalance(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    let max = *counts.iter().max().unwrap() as f64;
    max / mean
}

/// Normalizes a series to its first element (how the paper reports most
/// results, e.g. "normalized to RandPG" in Fig 10).
///
/// A zero first element makes "normalized to the baseline" meaningless, so
/// every entry comes back `NaN` rather than silently returning the raw
/// series (which would mislabel a Fig-10-style report). Callers that plot
/// or tabulate should assert the result is finite.
pub fn normalize_to_first(series: &[f64]) -> Vec<f64> {
    let Some(&first) = series.first() else {
        return Vec::new();
    };
    if first == 0.0 {
        return vec![f64::NAN; series.len()];
    }
    series.iter().map(|x| x / first).collect()
}

/// Relative improvement of `ours` over `baseline` as the paper quotes it:
/// "reduces the data transfer time by X %".
pub fn reduction_percent(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (baseline - ours) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_balanced() {
        assert!((imbalance(&[10, 10, 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_skewed() {
        assert!((imbalance(&[30, 0, 0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_degenerate() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn normalize() {
        assert_eq!(normalize_to_first(&[2.0, 4.0, 1.0]), vec![1.0, 2.0, 0.5]);
        assert!(normalize_to_first(&[]).is_empty());
    }

    #[test]
    fn normalize_zero_baseline_is_nan() {
        let out = normalize_to_first(&[0.0, 4.0, 1.0]);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|x| x.is_nan()), "zero baseline must not pass through: {out:?}");
    }

    #[test]
    fn reduction() {
        assert!((reduction_percent(10.0, 4.0) - 60.0).abs() < 1e-12);
        assert_eq!(reduction_percent(0.0, 4.0), 0.0);
    }
}
