//! Edge-cut placement: per-vertex DC assignment with Pregel-style combiner
//! messages (the model of Spinner and Revolver, §II-B).
//!
//! Every vertex lives wholly in one DC. Each iteration, for every vertex
//! `v` and every *other* DC hosting at least one of `v`'s in-neighbors, one
//! combined message of `g_v` bytes crosses the WAN (Pregel with combiners —
//! the strongest reasonable traffic model for these baselines). There is a
//! single communication stage per iteration.

use geograph::GeoGraph;
use geosim::{CloudEnv, StageLoads};

use crate::profile::TrafficProfile;
use crate::state::Objective;
use crate::{DcId, VertexId};

/// Edge-cut placement state.
#[derive(Clone, Debug)]
pub struct EdgeCutState {
    assignment: Vec<DcId>,
    loads: StageLoads,
    movement_cost: f64,
    num_iterations: f64,
    /// Vertices per DC (the balance objective of label-propagation
    /// partitioners).
    vertices_per_dc: Vec<u64>,
    /// Edges with both endpoints in the same DC.
    internal_edges: u64,
    total_edges: u64,
}

impl EdgeCutState {
    /// Builds edge-cut state from a per-vertex DC assignment.
    pub fn from_assignment(
        geo: &GeoGraph,
        env: &CloudEnv,
        assignment: Vec<DcId>,
        profile: &TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        assert_eq!(assignment.len(), geo.num_vertices());
        let m = env.num_dcs();
        let mut loads = StageLoads::new(m);
        let mut internal_edges = 0u64;
        let mut seen_dcs = vec![false; m];
        for v in 0..geo.num_vertices() as VertexId {
            let home = assignment[v as usize];
            seen_dcs.iter_mut().for_each(|s| *s = false);
            for &u in geo.graph.in_neighbors(v) {
                let src = assignment[u as usize];
                if src == home {
                    internal_edges += 1;
                } else if !seen_dcs[src as usize] {
                    seen_dcs[src as usize] = true;
                    loads.add_transfer(src, home, profile.g(v));
                }
            }
        }
        let mut vertices_per_dc = vec![0u64; m];
        for &d in &assignment {
            vertices_per_dc[d as usize] += 1;
        }
        let movement_cost =
            geosim::cost::movement_cost(env, &geo.locations, &assignment, &geo.data_sizes);
        EdgeCutState {
            assignment,
            loads,
            movement_cost,
            num_iterations,
            vertices_per_dc,
            internal_edges,
            total_edges: geo.num_edges() as u64,
        }
    }

    /// The per-vertex assignment.
    pub fn assignment(&self) -> &[DcId] {
        &self.assignment
    }

    /// Per-iteration message loads.
    pub fn loads(&self) -> &StageLoads {
        &self.loads
    }

    /// Vertices per DC.
    pub fn vertices_per_dc(&self) -> &[u64] {
        &self.vertices_per_dc
    }

    /// Fraction of edges fully inside one DC (the label-propagation
    /// locality objective).
    pub fn internal_edge_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            return 1.0;
        }
        self.internal_edges as f64 / self.total_edges as f64
    }

    /// Per-iteration WAN bytes.
    pub fn wan_bytes_per_iteration(&self) -> f64 {
        self.loads.total_up()
    }

    /// Objective under `env`: one communication stage per iteration.
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        Objective {
            transfer_time: self.loads.transfer_time(env),
            movement_cost: self.movement_cost,
            runtime_cost: self.num_iterations * self.loads.upload_cost(env),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::erdos_renyi;
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = erdos_renyi(400, 3000, 13);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(13));
        (geo, ec2_eight_regions())
    }

    #[test]
    fn natural_assignment_counts() {
        let (geo, env) = setup();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = EdgeCutState::from_assignment(&geo, &env, geo.locations.clone(), &profile, 10.0);
        assert_eq!(s.vertices_per_dc().iter().sum::<u64>(), geo.num_vertices() as u64);
        assert_eq!(s.objective(&env).movement_cost, 0.0);
        assert!(s.internal_edge_fraction() > 0.0 && s.internal_edge_fraction() < 1.0);
    }

    #[test]
    fn single_dc_has_no_traffic() {
        let (geo, env) = setup();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s =
            EdgeCutState::from_assignment(&geo, &env, vec![2; geo.num_vertices()], &profile, 10.0);
        assert_eq!(s.wan_bytes_per_iteration(), 0.0);
        assert_eq!(s.objective(&env).transfer_time, 0.0);
        assert!((s.internal_edge_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn combiner_semantics_bound_messages() {
        // With combiners, a vertex receives at most (M-1) messages per
        // iteration regardless of in-degree.
        let (geo, env) = setup();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = EdgeCutState::from_assignment(&geo, &env, geo.locations.clone(), &profile, 1.0);
        let max_bytes = geo.num_vertices() as f64 * 7.0 * 8.0;
        assert!(s.wan_bytes_per_iteration() <= max_bytes);
    }

    #[test]
    fn better_locality_less_traffic() {
        let (geo, env) = setup();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let natural =
            EdgeCutState::from_assignment(&geo, &env, geo.locations.clone(), &profile, 10.0);
        // Two-DC split by id parity is worse than... actually compare with
        // an assignment that's strictly coarser: everyone in one DC.
        let single =
            EdgeCutState::from_assignment(&geo, &env, vec![0; geo.num_vertices()], &profile, 10.0);
        assert!(single.wan_bytes_per_iteration() < natural.wan_bytes_per_iteration());
    }
}
