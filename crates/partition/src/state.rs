//! Shared placement state for the replica-based models (hybrid- and
//! vertex-cut): per-vertex edge-location counts, mirror sets, and the
//! per-DC load accumulators behind the Eq 1–5 objective.

use geosim::{CloudEnv, StageLoads};

use crate::error::PlanError;
use crate::profile::TrafficProfile;
use crate::{DcId, VertexId};

/// The optimization objective of a partitioning plan (Eq 6–7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective {
    /// Inter-DC data transfer time of one iteration, seconds (Eq 1).
    pub transfer_time: f64,
    /// One-time input-data movement cost, dollars (Eq 4).
    pub movement_cost: f64,
    /// Runtime upload cost over the whole job (all iterations), dollars
    /// (Eq 5 summed).
    pub runtime_cost: f64,
}

impl Objective {
    /// Total inter-DC communication cost, the left side of the budget
    /// constraint (Eq 7).
    pub fn total_cost(&self) -> f64 {
        self.movement_cost + self.runtime_cost
    }
}

/// Packed per-vertex metadata for the move-evaluation kernel's neighbor
/// sweeps. The kernel touches a handful of scalars per (randomly
/// scattered) neighbor — its occupancy mask, traffic bytes, master and
/// degree class. Kept in separate parallel arrays those reads cost up to
/// five cache misses per neighbor; packed into one 24-byte record they
/// cost one.
///
/// `g`/`a`, `master` and `high` are *copies* of the authoritative
/// `TrafficProfile` / `masters` / `is_high` (all of which other code still
/// reads); every site that mutates a master re-writes the copy, and
/// `validate_plan` cross-checks the two.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct VertexMeta {
    /// Occupancy bitmask over the vertex's count row: bit `d` set iff cell
    /// `(v, d)` holds any in- or out-count. Maintained exactly at the two
    /// count-mutation sites ([`PlacementState::from_edge_placement`] and
    /// the hybrid apply path); `num_dcs <= 64` is enforced at
    /// construction, so one `u64` always suffices.
    pub(crate) nnz: u64,
    /// Expected gather bytes (`profile.gather_bytes[v]`).
    pub(crate) g: f32,
    /// Expected apply bytes (`profile.apply_bytes[v]`).
    pub(crate) a: f32,
    /// Master DC (mirror of `masters[v]`).
    pub(crate) master: DcId,
    /// High-degree class (mirror of `is_high[v]`).
    pub(crate) high: bool,
}

/// Work counters of one incremental delta application
/// ([`crate::HybridState::apply_delta`]) — the probe behind the "window
/// work is proportional to the delta, not the graph" contract. The dynamic
/// benchmarks assert on [`Self::work_items`] the same way the kernel
/// asserts on its `ScratchStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaApplyStats {
    /// Vertices appended by this window.
    pub new_vertices: usize,
    /// Net edge insertions placed.
    pub inserted_edges: usize,
    /// Net edge deletions unplaced.
    pub deleted_edges: usize,
    /// Old-range vertices whose in-degree crossed θ and changed class.
    pub class_flips: usize,
    /// Surviving edges re-placed because their destination changed class.
    pub replaced_edges: usize,
    /// Old-range vertices whose load contribution was re-accumulated.
    pub affected_vertices: usize,
}

impl DeltaApplyStats {
    /// Total state-touching work items — the quantity that must scale with
    /// the update batch, never with the full graph.
    pub fn work_items(&self) -> usize {
        self.new_vertices
            + self.inserted_edges
            + self.deleted_edges
            + self.replaced_edges
            + self.affected_vertices
    }
}

/// Prepared, placement-rule-agnostic description of one window's state
/// mutation. Built by [`crate::HybridState::apply_delta`] (which owns the
/// hybrid-cut placement rule); executed by [`PlacementState::apply_delta`]
/// (which owns the bookkeeping invariants).
#[derive(Clone, Debug, Default)]
pub(crate) struct PlacementDeltaOps {
    /// Masters for the appended vertices `old_n..new_n` (their natural DCs
    /// — Eq 4 charges nothing for them, so the tracked movement cost stays
    /// valid without recomputation).
    pub(crate) new_masters: Vec<DcId>,
    /// Degree class for the appended vertices.
    pub(crate) new_high: Vec<bool>,
    /// Traffic-profile rows for the appended vertices.
    pub(crate) new_gather_bytes: Vec<f32>,
    pub(crate) new_apply_bytes: Vec<f32>,
    /// Old-range vertices whose degree class flips, with the new class.
    pub(crate) flips: Vec<(VertexId, bool)>,
    /// Edges to remove from their current DC: `(src, dst, dc)`. Every entry
    /// names a distinct edge currently placed at `dc`, so running all
    /// unplacements before any placement can never underflow a count lane.
    pub(crate) unplace: Vec<(VertexId, VertexId, DcId)>,
    /// Edges to place: `(src, dst, dc)`.
    pub(crate) place: Vec<(VertexId, VertexId, DcId)>,
    /// Sorted deduped old-range vertices whose counts, occupancy or class
    /// change — their load contributions are retired before mutation and
    /// re-accumulated after.
    pub(crate) affected: Vec<VertexId>,
}

/// Replica-based placement state shared by hybrid-cut and vertex-cut.
///
/// For every vertex `v` and DC `d` it tracks how many of `v`'s in-edges and
/// out-edges are placed at `d` (one interleaved count-plane pair, see
/// [`Self::counts_row`]). From those counts the model derives:
///
/// * **mirrors** — `v` is replicated at `d ≠ master(v)` iff any incident
///   edge lives at `d`;
/// * **gather traffic** — a high-degree `v` receives one aggregated message
///   of `g_v` bytes from every non-master DC holding ≥ 1 of its in-edges;
/// * **apply traffic** — every vertex's master sends `a_v` bytes to each
///   mirror (this is also how low-degree synchronization is modeled, per
///   the paper's unified representation §III-B).
///
/// The per-DC gather/apply [`StageLoads`] are maintained incrementally so a
/// candidate move is evaluated in `O(deg(v) + M)`.
#[derive(Clone, Debug)]
pub struct PlacementState {
    pub(crate) num_dcs: usize,
    pub(crate) masters: Vec<DcId>,
    pub(crate) is_high: Vec<bool>,
    /// Interleaved in/out count-plane pair:
    /// `counts[(v * num_dcs + d) * 2]` = in-edges of `v` placed at `d`,
    /// `counts[(v * num_dcs + d) * 2 + 1]` = out-edges of `v` placed at `d`.
    ///
    /// A vertex's whole row is `2 · M` contiguous `u32` lanes (exactly one
    /// 64-byte cache line at M = 8), so the kernel's per-neighbor
    /// `count_transitions` tests — which always probe the in *and* out
    /// count of the same `(v, d)` cell — stream one contiguous run instead
    /// of two parallel arrays.
    pub(crate) counts: Vec<u32>,
    /// Packed kernel-side metadata, one record per vertex — see
    /// [`VertexMeta`]. The occupancy mask lets the move-evaluation kernel
    /// skip whole neighbor rows in O(1) instead of scanning `2 · M` lanes.
    pub(crate) meta: Vec<VertexMeta>,
    /// Edges placed per DC (load-balance metric).
    pub(crate) edges_per_dc: Vec<u64>,
    pub(crate) gather: StageLoads,
    pub(crate) apply: StageLoads,
    pub(crate) movement_cost: f64,
    pub(crate) profile: TrafficProfile,
    pub(crate) num_iterations: f64,
}

impl PlacementState {
    /// Builds state from an explicit per-edge placement.
    ///
    /// `edges` yields `(src, dst, dc)` triples; `masters` and `is_high`
    /// define the computation model (vertex-cut passes all-high).
    /// `natural`/`data_sizes` come from the [`geograph::GeoGraph`] and give
    /// the movement cost baseline.
    ///
    /// Every triple is bounds-checked: plan files are external input, and
    /// an out-of-range DC or vertex id must surface as a typed
    /// [`PlanError`] naming the offending entry, not as a slice panic.
    #[allow(clippy::too_many_arguments)]
    pub fn from_edge_placement(
        env: &CloudEnv,
        num_vertices: usize,
        edges: impl Iterator<Item = (VertexId, VertexId, DcId)>,
        masters: Vec<DcId>,
        is_high: Vec<bool>,
        natural: &[DcId],
        data_sizes: &[u64],
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Result<Self, PlanError> {
        let m = env.num_dcs();
        if m > geograph::MAX_DCS {
            return Err(PlanError::TooManyDcs { num_dcs: m, max: geograph::MAX_DCS });
        }
        assert_eq!(masters.len(), num_vertices);
        assert_eq!(is_high.len(), num_vertices);
        assert_eq!(profile.len(), num_vertices);
        if let Some((vertex, &dc)) = masters.iter().enumerate().find(|&(_, &d)| d as usize >= m) {
            return Err(PlanError::MasterOutOfRange { vertex: vertex as VertexId, dc, num_dcs: m });
        }
        let meta = (0..num_vertices)
            .map(|i| VertexMeta {
                nnz: 0,
                g: profile.gather_bytes[i],
                a: profile.apply_bytes[i],
                master: masters[i],
                high: is_high[i],
            })
            .collect();
        let mut state = PlacementState {
            num_dcs: m,
            masters,
            is_high,
            counts: vec![0; num_vertices * m * 2],
            meta,
            edges_per_dc: vec![0; m],
            gather: StageLoads::new(m),
            apply: StageLoads::new(m),
            movement_cost: 0.0,
            profile,
            num_iterations,
        };
        for (u, v, d) in edges {
            if d as usize >= m {
                return Err(PlanError::EdgeDcOutOfRange { src: u, dst: v, dc: d, num_dcs: m });
            }
            if u as usize >= num_vertices || v as usize >= num_vertices {
                let vertex = if u as usize >= num_vertices { u } else { v };
                return Err(PlanError::VertexOutOfRange { vertex, num_vertices });
            }
            state.counts[(u as usize * m + d as usize) * 2 + 1] += 1;
            state.counts[(v as usize * m + d as usize) * 2] += 1;
            state.meta[u as usize].nnz |= 1 << d;
            state.meta[v as usize].nnz |= 1 << d;
            state.edges_per_dc[d as usize] += 1;
        }
        state.rebuild_loads();
        state.movement_cost = geosim::cost::movement_cost(env, natural, &state.masters, data_sizes);
        Ok(state)
    }

    /// Index of the in-count lane of cell `(v, d)`; the out-count lane is
    /// the next element.
    #[inline]
    pub(crate) fn cell(&self, v: usize, d: usize) -> usize {
        (v * self.num_dcs + d) * 2
    }

    /// Vertex `v`'s interleaved `[in, out]` count row: `2 · M` contiguous
    /// lanes, DC `d`'s pair at `row[2 * d]` / `row[2 * d + 1]`.
    #[inline]
    pub(crate) fn counts_row(&self, v: VertexId) -> &[u32] {
        let w = self.num_dcs * 2;
        let base = v as usize * w;
        &self.counts[base..base + w]
    }

    /// Recomputes the gather/apply load accumulators from the count arrays.
    pub(crate) fn rebuild_loads(&mut self) {
        self.gather.clear();
        self.apply.clear();
        for v in 0..self.masters.len() as VertexId {
            self.add_vertex_loads(v);
        }
    }

    /// Adds vertex `v`'s traffic contribution into the live accumulators.
    /// Iterates only `v`'s occupied cells — empty cells contribute
    /// nothing, so the skipped iterations leave the accumulated sums
    /// bit-identical to a full `0..m` scan.
    pub(crate) fn add_vertex_loads(&mut self, v: VertexId) {
        let meta = self.meta[v as usize];
        let master = meta.master as usize;
        let base = v as usize * self.num_dcs * 2;
        let g = meta.g as f64;
        let a = meta.a as f64;
        let mut bits = meta.nnz & !(1u64 << master);
        while bits != 0 {
            let d = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if meta.high && self.counts[base + 2 * d] > 0 {
                self.gather.add_up(d as DcId, g);
                self.gather.add_down(master as DcId, g);
            }
            if self.counts[base + 2 * d] + self.counts[base + 2 * d + 1] > 0 {
                self.apply.add_up(master as DcId, a);
                self.apply.add_down(d as DcId, a);
            }
        }
    }

    /// Removes vertex `v`'s traffic contribution from the live accumulators.
    pub(crate) fn remove_vertex_loads(&mut self, v: VertexId) {
        let meta = self.meta[v as usize];
        let master = meta.master as usize;
        let base = v as usize * self.num_dcs * 2;
        let g = meta.g as f64;
        let a = meta.a as f64;
        let mut bits = meta.nnz & !(1u64 << master);
        while bits != 0 {
            let d = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if meta.high && self.counts[base + 2 * d] > 0 {
                self.gather.add_up(d as DcId, -g);
                self.gather.add_down(master as DcId, -g);
            }
            if self.counts[base + 2 * d] + self.counts[base + 2 * d + 1] > 0 {
                self.apply.add_up(master as DcId, -a);
                self.apply.add_down(d as DcId, -a);
            }
        }
    }

    /// Places one directed edge at `d`: count lanes, occupancy bits and the
    /// per-DC balance. Part of the [`Self::apply_delta`] protocol — the
    /// endpoints' load contributions must be retired before and
    /// re-accumulated after the batch of edge mutations.
    pub(crate) fn place_edge(&mut self, u: VertexId, v: VertexId, d: DcId) {
        debug_assert_ne!(u, v, "cleaned deltas carry no self-loops");
        let cu = self.cell(u as usize, d as usize);
        self.counts[cu + 1] += 1;
        let cv = self.cell(v as usize, d as usize);
        self.counts[cv] += 1;
        self.meta[u as usize].nnz |= 1u64 << d;
        self.meta[v as usize].nnz |= 1u64 << d;
        self.edges_per_dc[d as usize] += 1;
    }

    /// Removes one directed edge from `d`, clearing an occupancy bit when
    /// its cell pair empties — the kernel trusts a clear bit to mean an
    /// all-zero cell. Counterpart of [`Self::place_edge`].
    pub(crate) fn unplace_edge(&mut self, u: VertexId, v: VertexId, d: DcId) {
        debug_assert_ne!(u, v, "cleaned deltas carry no self-loops");
        let cu = self.cell(u as usize, d as usize);
        self.counts[cu + 1] -= 1;
        if (self.counts[cu] | self.counts[cu + 1]) == 0 {
            self.meta[u as usize].nnz &= !(1u64 << d);
        }
        let cv = self.cell(v as usize, d as usize);
        self.counts[cv] -= 1;
        if (self.counts[cv] | self.counts[cv + 1]) == 0 {
            self.meta[v as usize].nnz &= !(1u64 << d);
        }
        self.edges_per_dc[d as usize] -= 1;
    }

    /// Executes a prepared window mutation in place, in work proportional
    /// to the ops — no array is rebuilt, the untouched prefix of every
    /// per-vertex structure is reused as-is (counts are row-major by
    /// vertex, so growth is a pure append).
    ///
    /// Order matters and is chosen so intermediate states stay legal:
    /// loads of affected vertices are retired while the *old* counts and
    /// classes are still intact; all unplacements run before any placement
    /// (each names a distinct currently-placed edge, so no lane can
    /// underflow); loads are re-accumulated once the new state is final.
    /// The tracked Eq 4 movement cost is unchanged by construction: old
    /// masters stay put and appended masters sit at their natural DCs.
    pub(crate) fn apply_delta(&mut self, ops: &PlacementDeltaOps) {
        let old_n = self.masters.len();
        debug_assert!(ops.affected.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(ops.affected.last().is_none_or(|&v| (v as usize) < old_n));

        // 1. Retire stale load contributions against the old state.
        for &v in &ops.affected {
            self.remove_vertex_loads(v);
        }

        // 2. Grow the per-vertex arrays (appends only).
        let m = self.num_dcs;
        self.masters.extend_from_slice(&ops.new_masters);
        self.is_high.extend_from_slice(&ops.new_high);
        let new_n = self.masters.len();
        self.counts.resize(new_n * m * 2, 0);
        self.profile.gather_bytes.extend_from_slice(&ops.new_gather_bytes);
        self.profile.apply_bytes.extend_from_slice(&ops.new_apply_bytes);
        for i in 0..ops.new_masters.len() {
            self.meta.push(VertexMeta {
                nnz: 0,
                g: ops.new_gather_bytes[i],
                a: ops.new_apply_bytes[i],
                master: ops.new_masters[i],
                high: ops.new_high[i],
            });
        }

        // 3. Degree-class flips (their edge re-placements ride in the
        // unplace/place lists; the flipped vertices are in `affected`, so
        // the class change flows into the load re-accumulation below).
        for &(f, high) in &ops.flips {
            self.is_high[f as usize] = high;
            self.meta[f as usize].high = high;
        }

        // 4. Edge mutations: all removals, then all placements.
        for &(u, v, d) in &ops.unplace {
            self.unplace_edge(u, v, d);
        }
        for &(u, v, d) in &ops.place {
            self.place_edge(u, v, d);
        }

        // 5. Re-accumulate loads under the new state.
        for &v in &ops.affected {
            self.add_vertex_loads(v);
        }
        for v in old_n..new_n {
            self.add_vertex_loads(v as VertexId);
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.masters.len()
    }

    /// Number of data centers.
    pub fn num_dcs(&self) -> usize {
        self.num_dcs
    }

    /// Named heap components of this state, for memory reports. The count
    /// planes (`2·M` u32 lanes per vertex) dominate; everything else is
    /// per-vertex scalars or per-DC accumulators.
    pub fn mem_components(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("counts", self.counts.capacity() * std::mem::size_of::<u32>()),
            ("vertex_meta", self.meta.capacity() * std::mem::size_of::<VertexMeta>()),
            ("masters", self.masters.capacity() * std::mem::size_of::<DcId>()),
            ("is_high", self.is_high.capacity() * std::mem::size_of::<bool>()),
            (
                "traffic_profile",
                (self.profile.gather_bytes.capacity() + self.profile.apply_bytes.capacity())
                    * std::mem::size_of::<f32>(),
            ),
            (
                "dc_accumulators",
                self.edges_per_dc.capacity() * std::mem::size_of::<u64>()
                    + 2 * 2 * self.num_dcs * std::mem::size_of::<f64>(),
            ),
        ]
    }

    /// Total heap bytes of this state (sum of [`Self::mem_components`]).
    pub fn heap_bytes(&self) -> usize {
        self.mem_components().iter().map(|(_, b)| b).sum()
    }

    /// Master location of every vertex — the RL *state* (§IV-B).
    pub fn masters(&self) -> &[DcId] {
        &self.masters
    }

    /// Master location of `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> DcId {
        self.masters[v as usize]
    }

    /// Whether `v` is high-degree under the hybrid-cut threshold.
    #[inline]
    pub fn is_high(&self, v: VertexId) -> bool {
        self.is_high[v as usize]
    }

    /// Number of in-edges of `v` placed at `d`.
    #[inline]
    pub fn in_count(&self, v: VertexId, d: DcId) -> u32 {
        self.counts[self.cell(v as usize, d as usize)]
    }

    /// Number of out-edges of `v` placed at `d`.
    #[inline]
    pub fn out_count(&self, v: VertexId, d: DcId) -> u32 {
        self.counts[self.cell(v as usize, d as usize) + 1]
    }

    /// Bitmask of DCs where `v` has a mirror (master excluded).
    ///
    /// `num_dcs <= 64` is guaranteed at construction ([`CloudEnv::new`] and
    /// [`Self::from_edge_placement`] both enforce [`geograph::MAX_DCS`]), so
    /// the shift cannot wrap.
    pub fn mirror_mask(&self, v: VertexId) -> u64 {
        let meta = &self.meta[v as usize];
        meta.nnz & !(1u64 << meta.master)
    }

    /// Number of mirrors of `v`.
    pub fn num_mirrors(&self, v: VertexId) -> u32 {
        self.mirror_mask(v).count_ones()
    }

    /// Average number of replicas (master + mirrors) per vertex — the
    /// replication factor λ of Fig 2.
    pub fn replication_factor(&self) -> f64 {
        let n = self.num_vertices().max(1);
        let replicas: u64 = (0..n as VertexId).map(|v| 1 + self.num_mirrors(v) as u64).sum();
        replicas as f64 / n as f64
    }

    /// Edges placed per DC.
    pub fn edges_per_dc(&self) -> &[u64] {
        &self.edges_per_dc
    }

    /// Per-iteration WAN usage in bytes (total uploads of both stages) —
    /// the Fig 2 "WAN usage" metric.
    pub fn wan_bytes_per_iteration(&self) -> f64 {
        self.gather.total_up() + self.apply.total_up()
    }

    /// Gather-stage loads (Eq 2 numerators).
    pub fn gather_loads(&self) -> &StageLoads {
        &self.gather
    }

    /// Apply-stage loads (Eq 3 numerators).
    pub fn apply_loads(&self) -> &StageLoads {
        &self.apply
    }

    /// One-time movement cost of the current masters (Eq 4).
    pub fn movement_cost(&self) -> f64 {
        self.movement_cost
    }

    /// Overrides the tracked Eq 4 movement cost.
    ///
    /// Checkpoint restore uses this: a state rebuilt from masters sums the
    /// movement cost in vertex order, while a live trainer accumulates it
    /// incrementally — the two agree only to fp tolerance. Restoring the
    /// incrementally tracked value keeps a resumed training run bit-exact
    /// with the uninterrupted one.
    pub fn override_movement_cost(&mut self, cost: f64) {
        self.movement_cost = cost;
    }

    /// Number of analytics iterations the cost model charges for.
    pub fn num_iterations(&self) -> f64 {
        self.num_iterations
    }

    /// The traffic profile the state is weighted with.
    pub fn profile(&self) -> &TrafficProfile {
        &self.profile
    }

    /// Evaluates the current plan under `env` (Eq 1 + Eq 4/5).
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        debug_assert_eq!(env.num_dcs(), self.num_dcs);
        Objective {
            transfer_time: self.gather.transfer_time(env) + self.apply.transfer_time(env),
            movement_cost: self.movement_cost,
            runtime_cost: self.num_iterations
                * (self.gather.upload_cost(env) + self.apply.upload_cost(env)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosim::Datacenter;

    fn env2() -> CloudEnv {
        CloudEnv::new(vec![
            Datacenter::from_gb_units("a", 1.0, 2.0, 0.10),
            Datacenter::from_gb_units("b", 1.0, 2.0, 0.10),
        ])
    }

    /// Two vertices, edge 0->1 placed at DC 1; vertex 0 mastered at DC 0.
    fn simple_state(env: &CloudEnv) -> PlacementState {
        PlacementState::from_edge_placement(
            env,
            2,
            [(0u32, 1u32, 1u8)].into_iter(),
            vec![0, 1],
            vec![false, true],
            &[0, 1],
            &[100, 100],
            TrafficProfile::uniform(2, 8.0),
            10.0,
        )
        .unwrap()
    }

    #[test]
    fn counts_and_mirrors() {
        let env = env2();
        let s = simple_state(&env);
        assert_eq!(s.out_count(0, 1), 1);
        assert_eq!(s.in_count(1, 1), 1);
        // Vertex 0's edge lives at DC 1 but its master is DC 0 => mirror at 1.
        assert_eq!(s.mirror_mask(0), 0b10);
        // Vertex 1's only edge is at its master DC => no mirrors.
        assert_eq!(s.mirror_mask(1), 0);
        assert!((s.replication_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn apply_traffic_only_for_mirrored_vertex() {
        let env = env2();
        let s = simple_state(&env);
        // Vertex 0 master at DC0 sends 8 bytes to its mirror at DC1.
        assert_eq!(s.apply_loads().up(0), 8.0);
        assert_eq!(s.apply_loads().down(1), 8.0);
        // Vertex 1 is high-degree but its in-edge is at its master: no gather.
        assert_eq!(s.gather_loads().up(0), 0.0);
        assert_eq!(s.gather_loads().up(1), 0.0);
    }

    #[test]
    fn gather_traffic_for_remote_in_edges() {
        let env = env2();
        // Edge 0->1 placed at DC 0, vertex 1 (high) mastered at DC 1.
        let s = PlacementState::from_edge_placement(
            &env,
            2,
            [(0u32, 1u32, 0u8)].into_iter(),
            vec![0, 1],
            vec![false, true],
            &[0, 1],
            &[100, 100],
            TrafficProfile::uniform(2, 8.0),
            10.0,
        )
        .unwrap();
        assert_eq!(s.gather_loads().up(0), 8.0);
        assert_eq!(s.gather_loads().down(1), 8.0);
        // Vertex 1 also has a mirror at DC 0 (its in-edge lives there):
        assert_eq!(s.apply_loads().up(1), 8.0);
        assert_eq!(s.apply_loads().down(0), 8.0);
    }

    #[test]
    fn low_degree_vertex_has_no_gather() {
        let env = env2();
        let s = PlacementState::from_edge_placement(
            &env,
            2,
            [(0u32, 1u32, 0u8)].into_iter(),
            vec![0, 1],
            vec![false, false], // vertex 1 low-degree now
            &[0, 1],
            &[100, 100],
            TrafficProfile::uniform(2, 8.0),
            10.0,
        )
        .unwrap();
        assert_eq!(s.gather_loads().total_up(), 0.0);
        // Synchronization still happens at apply.
        assert_eq!(s.apply_loads().up(1), 8.0);
    }

    #[test]
    fn objective_combines_time_and_cost() {
        let env = env2();
        let s = simple_state(&env);
        let obj = s.objective(&env);
        // 8 bytes over a 1 GB/s uplink.
        assert!((obj.transfer_time - 8.0e-9).abs() < 1e-15);
        assert_eq!(obj.movement_cost, 0.0);
        // 10 iterations * 8 bytes * $0.10/GB.
        assert!((obj.runtime_cost - 10.0 * 8.0 * 0.10e-9).abs() < 1e-18);
        assert!(obj.total_cost() > 0.0);
    }

    #[test]
    fn movement_cost_counts_displaced_masters() {
        let env = env2();
        let s = PlacementState::from_edge_placement(
            &env,
            2,
            std::iter::empty(),
            vec![1, 1], // vertex 0 displaced from natural DC 0
            vec![false, false],
            &[0, 1],
            &[1_000_000_000, 100],
            TrafficProfile::uniform(2, 8.0),
            1.0,
        )
        .unwrap();
        assert!((s.movement_cost() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn wan_bytes_matches_loads() {
        let env = env2();
        let s = simple_state(&env);
        assert_eq!(
            s.wan_bytes_per_iteration(),
            s.gather_loads().total_up() + s.apply_loads().total_up()
        );
    }

    #[test]
    fn edges_per_dc_tracked() {
        let env = env2();
        let s = simple_state(&env);
        assert_eq!(s.edges_per_dc(), &[0, 1]);
    }

    #[test]
    fn out_of_range_dc_is_typed_error() {
        let env = env2();
        let err = PlacementState::from_edge_placement(
            &env,
            2,
            [(0u32, 1u32, 5u8)].into_iter(),
            vec![0, 1],
            vec![false, true],
            &[0, 1],
            &[100, 100],
            TrafficProfile::uniform(2, 8.0),
            10.0,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::EdgeDcOutOfRange { src: 0, dst: 1, dc: 5, num_dcs: 2 });
    }

    #[test]
    fn out_of_range_vertex_is_typed_error() {
        let env = env2();
        let err = PlacementState::from_edge_placement(
            &env,
            2,
            [(0u32, 7u32, 1u8)].into_iter(),
            vec![0, 1],
            vec![false, true],
            &[0, 1],
            &[100, 100],
            TrafficProfile::uniform(2, 8.0),
            10.0,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::VertexOutOfRange { vertex: 7, num_vertices: 2 });
    }

    #[test]
    fn out_of_range_master_is_typed_error() {
        let env = env2();
        let err = PlacementState::from_edge_placement(
            &env,
            2,
            std::iter::empty(),
            vec![0, 9],
            vec![false, true],
            &[0, 1],
            &[100, 100],
            TrafficProfile::uniform(2, 8.0),
            10.0,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::MasterOutOfRange { vertex: 1, dc: 9, num_dcs: 2 });
    }
}
