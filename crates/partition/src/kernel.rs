//! One-sweep batched move-evaluation kernel.
//!
//! Evaluating "move vertex `v` to DC `b`" is the innermost operation of
//! every partitioner in this workspace: the RL trainer scores all `M`
//! destinations for every sampled agent each iteration, and the greedy
//! baselines scan all `M` DCs per vertex. The naive form repeats an
//! `O(deg(v))` neighborhood sweep (plus a hash-map allocation) once per
//! destination, `M` times per vertex.
//!
//! The key observation: the count deltas a move causes are
//! **destination-independent** — moving `v` from its master `a` to *any*
//! `b ≠ a` removes the same `k` edges from `a` and adds them at `b`. So one
//! sweep suffices for all `M` candidates:
//!
//! 1. **Stage** (`O(deg v)`, model-specific): the owning model records
//!    `v`'s own count delta and one [`CntDelta`] per affected neighbor into
//!    a reusable [`MoveScratch`] arena — a flat `Vec`, sorted and
//!    duplicate-merged in place, replacing the per-call `FxHashMap`.
//! 2. **Mid** (`O(deg v + M)`): copy the live per-DC stage loads once,
//!    subtract `v`'s whole contribution and every neighbor's *source-side*
//!    (DC `a`) threshold transition. This intermediate is shared by all
//!    destinations.
//! 3. **Destination deltas** (`O(deg v)` defaults + sparse corrections):
//!    destination-side deltas are non-negative and candidate-independent,
//!    so an *empty* count cell's transition is a per-neighbor constant —
//!    aggregated by neighbor master into two `O(M)` default rows. The
//!    `M × M` arena only receives corrections at the few cells where a
//!    neighbor already holds counts, found by walking the occupancy
//!    bitmask in the neighbor's packed `VertexMeta` record — the common
//!    master-only neighbor costs one u64 test, no row read.
//! 4. **Project** (`O(M)` per destination): `row = mid + correction_row +
//!    defaults` (neighbors mastered at `b` exempt from row `b`), re-add
//!    `v` with master `b`, evaluate Eq 1–5.
//!
//! Batched and single-destination paths execute the *same* floating-point
//! operations in the *same* order per destination, so
//! [`PlacementState::evaluate_all_moves`] equals `M` independent
//! [`PlacementState::evaluate_move_to`] calls **bit-for-bit** (enforced by
//! `HybridState::check_consistency` and the property suite).

use std::cell::RefCell;

use geosim::CloudEnv;

use crate::state::{Objective, PlacementState};
use crate::{DcId, VertexId};

/// Count deltas a move applies to one vertex's rows at the move's source
/// DC (`*_a`) and destination DC (`*_b`). Destination-independent: the
/// same delta holds for every candidate destination.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CntDelta {
    pub in_a: i64,
    pub in_b: i64,
    pub out_a: i64,
    pub out_b: i64,
}

impl CntDelta {
    #[inline]
    fn merge(&mut self, o: CntDelta) {
        self.in_a += o.in_a;
        self.in_b += o.in_b;
        self.out_a += o.out_a;
        self.out_b += o.out_b;
    }
}

/// Reusable arena for batched move evaluation. Create once per worker
/// thread and pass to every evaluation call; all buffers are retained
/// between calls so the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct MoveScratch {
    m: usize,
    pub(crate) self_delta: CntDelta,
    /// Per-neighbor deltas; sorted by vertex id and duplicate-merged once
    /// [`seal`](Self::seal) runs.
    pub(crate) neighbors: Vec<(VertexId, CntDelta)>,
    sealed: bool,
    // Live loads minus v minus neighbor source-side transitions (len M).
    mid_gu: Vec<f64>,
    mid_gd: Vec<f64>,
    mid_au: Vec<f64>,
    mid_ad: Vec<f64>,
    // Destination-major M×M neighbor destination-side deltas. Invariant
    // between calls: all-zero outside the rows flagged in `dest_dirty`
    // (established by `ensure_m`, restored row-by-row at the top of
    // `evaluate_all_moves`), so clean rows are never zeroed or re-read.
    dest_gu: Vec<f64>,
    dest_gd: Vec<f64>,
    dest_au: Vec<f64>,
    dest_ad: Vec<f64>,
    // Bit `b` set iff destination row `b` of the dest arenas may hold
    // nonzero corrections from the most recent `evaluate_all_moves`.
    dest_dirty: u64,
    // Single-destination delta row (len M), used by `evaluate_move_to`.
    one_gu: Vec<f64>,
    one_gd: Vec<f64>,
    one_au: Vec<f64>,
    one_ad: Vec<f64>,
    // Default (empty-cell) destination-side transition mass, aggregated by
    // neighbor master DC (len M). See `evaluate_all_moves`.
    def_g: Vec<f64>,
    def_a: Vec<f64>,
    // Projection workspace (len M).
    row_gu: Vec<f64>,
    row_gd: Vec<f64>,
    row_au: Vec<f64>,
    row_ad: Vec<f64>,
    objectives: Vec<Objective>,
}

impl MoveScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the staged deltas for a new move. Models call this before
    /// re-staging; load buffers are reused as-is.
    pub(crate) fn begin_stage(&mut self) {
        self.self_delta = CntDelta::default();
        self.neighbors.clear();
        self.sealed = false;
    }

    /// Stages one (possibly repeated) neighbor delta.
    #[inline]
    pub(crate) fn push_neighbor(&mut self, x: VertexId, delta: CntDelta) {
        debug_assert!(!self.sealed);
        self.neighbors.push((x, delta));
    }

    /// Sorts the staged neighbor deltas by vertex id and merges duplicates
    /// in place. Merging is required for correctness: threshold transitions
    /// are non-linear in the delta, so a neighbor touched by several edges
    /// must be projected once with its summed delta.
    pub(crate) fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.sealed = true;
        self.neighbors.sort_unstable_by_key(|&(x, _)| x);
        let mut w = 0usize;
        for i in 0..self.neighbors.len() {
            if w > 0 && self.neighbors[w - 1].0 == self.neighbors[i].0 {
                let d = self.neighbors[i].1;
                self.neighbors[w - 1].1.merge(d);
            } else {
                self.neighbors.swap(w, i);
                w += 1;
            }
        }
        self.neighbors.truncate(w);
    }

    /// Resizes all projection buffers for `m` DCs (no-op when unchanged).
    fn ensure_m(&mut self, m: usize) {
        if self.m == m {
            return;
        }
        self.m = m;
        let zero_obj = Objective { transfer_time: 0.0, movement_cost: 0.0, runtime_cost: 0.0 };
        for buf in [
            &mut self.mid_gu,
            &mut self.mid_gd,
            &mut self.mid_au,
            &mut self.mid_ad,
            &mut self.one_gu,
            &mut self.one_gd,
            &mut self.one_au,
            &mut self.one_ad,
            &mut self.row_gu,
            &mut self.row_gd,
            &mut self.row_au,
            &mut self.row_ad,
            &mut self.def_g,
            &mut self.def_a,
        ] {
            buf.resize(m, 0.0);
        }
        for buf in [&mut self.dest_gu, &mut self.dest_gd, &mut self.dest_au, &mut self.dest_ad] {
            buf.resize(m * m, 0.0);
            // The row stride changed, so the dirty-row bookkeeping no
            // longer maps; re-establish the all-zero invariant wholesale.
            buf.fill(0.0);
        }
        self.dest_dirty = 0;
        self.objectives.resize(m, zero_obj);
    }

    /// The per-destination objectives of the last
    /// [`PlacementState::evaluate_all_moves`] call (index = destination DC).
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives[..self.m]
    }

    /// Pre-grows the staged-neighbor arena to hold `n` entries — lets a
    /// long-lived scratch (a pool worker's, a refiner's) front-load its
    /// steady-state allocation instead of growing inside the first hot
    /// sweep. Never shrinks.
    pub fn reserve_neighbors(&mut self, n: usize) {
        let len = self.neighbors.len();
        if n > len {
            self.neighbors.reserve(n - len);
        }
    }

    /// Capacity snapshot of the arena's growable buffers. A long-lived
    /// scratch (e.g. one resident in a `WorkerPool` worker) reaches a
    /// steady state after its first pass over the workload: the snapshot
    /// lets tests and telemetry assert that later passes cause no regrowth
    /// — i.e. the hot loop really is allocation-free.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            width: self.m,
            neighbor_capacity: self.neighbors.capacity(),
            dest_cells: self.dest_gu.len(),
        }
    }

    pub(crate) fn objectives_mut(&mut self) -> &mut [Objective] {
        let m = self.m;
        &mut self.objectives[..m]
    }

    /// Heap bytes held by this arena: the staged-neighbor buffer plus the
    /// fourteen len-M projection rows, four M×M destination arenas and the
    /// per-destination objectives.
    pub fn heap_bytes(&self) -> usize {
        let f64s = self.mid_gu.capacity()
            + self.mid_gd.capacity()
            + self.mid_au.capacity()
            + self.mid_ad.capacity()
            + self.one_gu.capacity()
            + self.one_gd.capacity()
            + self.one_au.capacity()
            + self.one_ad.capacity()
            + self.row_gu.capacity()
            + self.row_gd.capacity()
            + self.row_au.capacity()
            + self.row_ad.capacity()
            + self.def_g.capacity()
            + self.def_a.capacity()
            + self.dest_gu.capacity()
            + self.dest_gd.capacity()
            + self.dest_au.capacity()
            + self.dest_ad.capacity();
        f64s * std::mem::size_of::<f64>()
            + self.neighbors.capacity() * std::mem::size_of::<(VertexId, CntDelta)>()
            + self.objectives.capacity() * std::mem::size_of::<Objective>()
    }
}

/// Capacity snapshot of a [`MoveScratch`] (see [`MoveScratch::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScratchStats {
    /// DC count the projection buffers are sized for (0 before first use).
    pub width: usize,
    /// Allocated capacity of the staged-neighbor arena — grows to the
    /// largest neighborhood evaluated so far, then stays put.
    pub neighbor_capacity: usize,
    /// Allocated cells of each destination-major M×M correction arena.
    pub dest_cells: usize,
}

thread_local! {
    static TLS_SCRATCH: RefCell<MoveScratch> = RefCell::new(MoveScratch::new());
}

/// Runs `f` with this thread's shared scratch arena — backs the legacy
/// scratch-less entry points (`HybridState::evaluate_move` etc.).
/// Callers that hold a scratch should pass their own instead.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut MoveScratch) -> R) -> R {
    TLS_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Mirror-threshold transitions of one `(vertex, DC)` count cell whose
/// in/out counts change by `(d_in, d_out)`.
///
/// Returns `(gather, apply)` steps in `{-1.0, 0.0, +1.0}`: whether the
/// cell's aggregated gather message (in-edges present, high-degree only)
/// and its mirror's apply message (any edge present) appear (`+1`) or
/// disappear (`-1`). Callers must skip the vertex's master DC.
#[inline]
pub fn count_transitions(
    high: bool,
    in_old: i64,
    out_old: i64,
    d_in: i64,
    d_out: i64,
) -> (f64, f64) {
    let in_new = in_old + d_in;
    let tot_old = in_old + out_old;
    let tot_new = in_new + out_old + d_out;
    debug_assert!(in_new >= 0 && tot_new >= 0);
    let gather = if high { step(in_old > 0, in_new > 0) } else { 0.0 };
    let apply = step(tot_old > 0, tot_new > 0);
    (gather, apply)
}

#[inline]
fn step(old: bool, new: bool) -> f64 {
    match (old, new) {
        (true, false) => -1.0,
        (false, true) => 1.0,
        _ => 0.0,
    }
}

/// [`count_transitions`] of an **empty** `(0, 0)` count cell under a
/// destination-side delta. Destination-side deltas are non-negative (the
/// destination only gains edges, for *every* candidate DC alike), so this
/// is a per-neighbor constant: most neighbors have counts in only one or
/// two DCs, and every other destination row sees exactly this value.
#[inline]
fn default_transitions(high: bool, d_in: i64, d_out: i64) -> (f64, f64) {
    debug_assert!(d_in >= 0 && d_out >= 0);
    let gather = if high && d_in > 0 { 1.0 } else { 0.0 };
    let apply = if d_in + d_out > 0 { 1.0 } else { 0.0 };
    (gather, apply)
}

impl PlacementState {
    /// Evaluates moving `v`'s master to **every** DC in one neighborhood
    /// sweep. `scratch` must hold the staged (sealed) count deltas of the
    /// move; the result slice lives in the scratch, indexed by destination
    /// (`objectives[master(v)]` is the unchanged current objective).
    ///
    /// `movement_cost` is reported as the current plan's for every
    /// destination — per-destination movement pricing is model-specific
    /// and patched by the owning model (see `HybridState`).
    ///
    /// Cost: `O(deg(v) + M)` sweep + `O(deg(v))` count-row scans with
    /// sparse corrections + `O(M²)` tiny-constant projection, versus `M`
    /// full sweeps (and `M` hash maps) for the per-candidate path.
    pub fn evaluate_all_moves<'s>(
        &self,
        env: &CloudEnv,
        v: VertexId,
        scratch: &'s mut MoveScratch,
    ) -> &'s [Objective] {
        debug_assert_eq!(env.num_dcs(), self.num_dcs);
        let m = self.num_dcs;
        scratch.seal();
        scratch.ensure_m(m);
        let a = self.masters[v as usize] as usize;
        self.build_mid(v, a, scratch);

        let sd = scratch.self_delta;
        let MoveScratch {
            ref neighbors,
            ref mid_gu,
            ref mid_gd,
            ref mid_au,
            ref mid_ad,
            ref mut dest_gu,
            ref mut dest_gd,
            ref mut dest_au,
            ref mut dest_ad,
            ref mut dest_dirty,
            ref mut row_gu,
            ref mut row_gd,
            ref mut row_au,
            ref mut row_ad,
            ref mut def_g,
            ref mut def_a,
            ref mut objectives,
            ..
        } = *scratch;

        // Destination-side neighbor transitions. A neighbor's counts at
        // destination `b` gain (in_b, out_b); since those deltas are the
        // same for every candidate, the transition of an *empty* cell is a
        // per-neighbor constant ([`default_transitions`]). Defaults are
        // aggregated by neighbor master (`def_*`, applied O(M) per row at
        // projection time); the M×M arena only holds the sparse
        // *corrections* at the few cells where a neighbor already has
        // counts. This turns the hub case from O(deg·M) transition math
        // into O(deg) defaults + O(deg) row scans + sparse fix-ups.
        // Restore the arena's all-zero invariant by clearing only the rows
        // the previous call dirtied; clean rows are already zero.
        let mut prev = *dest_dirty;
        while prev != 0 {
            let b = prev.trailing_zeros() as usize;
            prev &= prev - 1;
            let r = b * m;
            dest_gu[r..r + m].fill(0.0);
            dest_gd[r..r + m].fill(0.0);
            dest_au[r..r + m].fill(0.0);
            dest_ad[r..r + m].fill(0.0);
        }
        *dest_dirty = 0;
        def_g[..m].fill(0.0);
        def_a[..m].fill(0.0);
        for &(x, delta) in neighbors {
            if delta.in_b == 0 && delta.out_b == 0 {
                continue;
            }
            let mx = self.meta[x as usize];
            let master_x = mx.master as usize;
            let high = mx.high;
            let (gt0, at0) = default_transitions(high, delta.in_b, delta.out_b);
            let g = mx.g as f64;
            let ab = mx.a as f64;
            def_g[master_x] += gt0 * g;
            def_a[master_x] += at0 * ab;
            // Only occupied cells can deviate from the default: walk the
            // occupancy mask instead of scanning the row. For the common
            // neighbor whose only counts sit at its own master this is a
            // single masked-out u64 test — the row is never touched.
            let mut bits = mx.nnz & !(1u64 << a) & !(1u64 << master_x);
            if bits == 0 {
                continue;
            }
            let xrow = self.counts_row(x);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                *dest_dirty |= 1u64 << b;
                let in_c = xrow[2 * b];
                let out_c = xrow[2 * b + 1];
                let (gt, at) =
                    count_transitions(high, in_c as i64, out_c as i64, delta.in_b, delta.out_b);
                let cg = (gt - gt0) * g;
                let ca = (at - at0) * ab;
                let row = b * m;
                if cg != 0.0 {
                    dest_gu[row + b] += cg;
                    dest_gd[row + master_x] += cg;
                }
                if ca != 0.0 {
                    dest_au[row + master_x] += ca;
                    dest_ad[row + b] += ca;
                }
            }
        }
        let mut tot_g = 0.0;
        let mut tot_a = 0.0;
        for d in 0..m {
            tot_g += def_g[d];
            tot_a += def_a[d];
        }

        // Project every destination: row = mid + correction row + defaults
        // (neighbors mastered at `b` are exempt from row `b`), then re-add
        // v mastered at b (its counts at the old master a adjusted).
        #[allow(clippy::needless_range_loop)] // b indexes four dest_* arrays too
        for b in 0..m {
            if b == a {
                objectives[b] = self.objective(env);
                continue;
            }
            if *dest_dirty & (1u64 << b) != 0 {
                let r = b * m;
                for d in 0..m {
                    row_gu[d] = mid_gu[d] + dest_gu[r + d];
                    row_gd[d] = mid_gd[d] + dest_gd[r + d];
                    row_au[d] = mid_au[d] + dest_au[r + d];
                    row_ad[d] = mid_ad[d] + dest_ad[r + d];
                }
            } else {
                // Clean row: every correction cell is +0.0, so adding the
                // literal constant is bit-identical without touching the
                // arena (and to the single-destination path's `mid + one`,
                // whose unwritten cells are also +0.0).
                for d in 0..m {
                    row_gu[d] = mid_gu[d] + 0.0;
                    row_gd[d] = mid_gd[d] + 0.0;
                    row_au[d] = mid_au[d] + 0.0;
                    row_ad[d] = mid_ad[d] + 0.0;
                }
            }
            row_gu[b] += tot_g - def_g[b];
            row_ad[b] += tot_a - def_a[b];
            for d in 0..b {
                row_gd[d] += def_g[d];
                row_au[d] += def_a[d];
            }
            for d in b + 1..m {
                row_gd[d] += def_g[d];
                row_au[d] += def_a[d];
            }
            self.project_vertex_into(
                v, b, a, sd.in_a, sd.out_a, 1.0, row_gu, row_gd, row_au, row_ad,
            );
            objectives[b] = self.objective_from_rows(env, row_gu, row_gd, row_au, row_ad);
        }
        &scratch.objectives[..m]
    }

    /// Single-destination evaluation through the same kernel: performs the
    /// identical per-cell floating-point operations (in the identical
    /// order) as destination `to`'s slot of [`Self::evaluate_all_moves`],
    /// so the two agree bit-for-bit.
    pub fn evaluate_move_to(
        &self,
        env: &CloudEnv,
        v: VertexId,
        to: DcId,
        scratch: &mut MoveScratch,
    ) -> Objective {
        debug_assert_eq!(env.num_dcs(), self.num_dcs);
        let m = self.num_dcs;
        let a = self.masters[v as usize] as usize;
        let b = to as usize;
        if b == a {
            return self.objective(env);
        }
        scratch.seal();
        scratch.ensure_m(m);
        self.build_mid(v, a, scratch);

        let sd = scratch.self_delta;
        let MoveScratch {
            ref neighbors,
            ref mid_gu,
            ref mid_gd,
            ref mid_au,
            ref mid_ad,
            ref mut one_gu,
            ref mut one_gd,
            ref mut one_au,
            ref mut one_ad,
            ref mut row_gu,
            ref mut row_gd,
            ref mut row_au,
            ref mut row_ad,
            ref mut def_g,
            ref mut def_a,
            ..
        } = *scratch;

        // Same defaults-plus-corrections scheme as `evaluate_all_moves`,
        // restricted to destination row `b` — identical per-cell fp
        // operations in identical order, so the two paths agree
        // bit-for-bit.
        one_gu[..m].fill(0.0);
        one_gd[..m].fill(0.0);
        one_au[..m].fill(0.0);
        one_ad[..m].fill(0.0);
        def_g[..m].fill(0.0);
        def_a[..m].fill(0.0);
        for &(x, delta) in neighbors {
            if delta.in_b == 0 && delta.out_b == 0 {
                continue;
            }
            let mx = self.meta[x as usize];
            let master_x = mx.master as usize;
            let high = mx.high;
            let (gt0, at0) = default_transitions(high, delta.in_b, delta.out_b);
            let g = mx.g as f64;
            let ab = mx.a as f64;
            def_g[master_x] += gt0 * g;
            def_a[master_x] += at0 * ab;
            if b == master_x {
                continue;
            }
            // Same occupancy gate as the batched path: an empty cell stays
            // on the default, contributing no correction.
            if mx.nnz & (1u64 << b) == 0 {
                continue;
            }
            let xrow = self.counts_row(x);
            let in_c = xrow[2 * b];
            let out_c = xrow[2 * b + 1];
            let (gt, at) =
                count_transitions(high, in_c as i64, out_c as i64, delta.in_b, delta.out_b);
            let cg = (gt - gt0) * g;
            let ca = (at - at0) * ab;
            if cg != 0.0 {
                one_gu[b] += cg;
                one_gd[master_x] += cg;
            }
            if ca != 0.0 {
                one_au[master_x] += ca;
                one_ad[b] += ca;
            }
        }
        let mut tot_g = 0.0;
        let mut tot_a = 0.0;
        for d in 0..m {
            tot_g += def_g[d];
            tot_a += def_a[d];
        }

        for d in 0..m {
            row_gu[d] = mid_gu[d] + one_gu[d];
            row_gd[d] = mid_gd[d] + one_gd[d];
            row_au[d] = mid_au[d] + one_au[d];
            row_ad[d] = mid_ad[d] + one_ad[d];
        }
        row_gu[b] += tot_g - def_g[b];
        row_ad[b] += tot_a - def_a[b];
        for d in 0..b {
            row_gd[d] += def_g[d];
            row_au[d] += def_a[d];
        }
        for d in b + 1..m {
            row_gd[d] += def_g[d];
            row_au[d] += def_a[d];
        }
        self.project_vertex_into(v, b, a, sd.in_a, sd.out_a, 1.0, row_gu, row_gd, row_au, row_ad);
        self.objective_from_rows(env, row_gu, row_gd, row_au, row_ad)
    }

    /// Fills `scratch`'s mid buffers: live loads minus `v`'s whole current
    /// contribution minus every staged neighbor's source-side (DC `a`)
    /// threshold transition. Shared by every candidate destination.
    fn build_mid(&self, v: VertexId, a: usize, scratch: &mut MoveScratch) {
        let m = self.num_dcs;
        let MoveScratch {
            ref neighbors,
            ref mut mid_gu,
            ref mut mid_gd,
            ref mut mid_au,
            ref mut mid_ad,
            ..
        } = *scratch;
        mid_gu[..m].copy_from_slice(self.gather.up_slice());
        mid_gd[..m].copy_from_slice(self.gather.down_slice());
        mid_au[..m].copy_from_slice(self.apply.up_slice());
        mid_ad[..m].copy_from_slice(self.apply.down_slice());
        self.project_vertex_into(v, a, a, 0, 0, -1.0, mid_gu, mid_gd, mid_au, mid_ad);
        for &(x, delta) in neighbors {
            if delta.in_a == 0 && delta.out_a == 0 {
                continue;
            }
            let mx = self.meta[x as usize];
            let master_x = mx.master as usize;
            if a == master_x {
                continue;
            }
            let xrow = self.counts_row(x);
            let (gt, at) = count_transitions(
                mx.high,
                xrow[2 * a] as i64,
                xrow[2 * a + 1] as i64,
                delta.in_a,
                delta.out_a,
            );
            if gt != 0.0 {
                let g = mx.g as f64;
                mid_gu[a] += gt * g;
                mid_gd[master_x] += gt * g;
            }
            if at != 0.0 {
                let ab = mx.a as f64;
                mid_au[master_x] += at * ab;
                mid_ad[a] += at * ab;
            }
        }
    }

    /// Projects adding (`sign = 1`) or removing (`sign = -1`) vertex `v`'s
    /// full traffic contribution onto scratch rows, with its counts at DC
    /// `adj_dc` adjusted by `(d_in, d_out)` and its master at `master`.
    #[allow(clippy::too_many_arguments)]
    fn project_vertex_into(
        &self,
        v: VertexId,
        master: usize,
        adj_dc: usize,
        d_in: i64,
        d_out: i64,
        sign: f64,
        gu: &mut [f64],
        gd: &mut [f64],
        au: &mut [f64],
        ad: &mut [f64],
    ) {
        let vrow = self.counts_row(v);
        let mv = self.meta[v as usize];
        let g = mv.g as f64 * sign;
        let a_bytes = mv.a as f64 * sign;
        let high = mv.high;
        // Empty cells contribute nothing, so walking the occupancy mask in
        // ascending bit order (with `adj_dc` forced in — its cell may be
        // empty but gain counts from the delta) performs exactly the fp
        // operations of a full `0..m` scan, in the same order.
        let mut bits = (mv.nnz | (1u64 << adj_dc)) & !(1u64 << master);
        while bits != 0 {
            let d = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let mut in_c = vrow[2 * d] as i64;
            let mut out_c = vrow[2 * d + 1] as i64;
            if d == adj_dc {
                in_c += d_in;
                out_c += d_out;
            }
            debug_assert!(in_c >= 0 && out_c >= 0);
            if high && in_c > 0 {
                gu[d] += g;
                gd[master] += g;
            }
            if in_c + out_c > 0 {
                au[master] += a_bytes;
                ad[d] += a_bytes;
            }
        }
    }

    /// Eq 1 + Eq 5 over projected rows; movement cost is the current
    /// plan's (models patch it per destination). Delegates to the same
    /// shared [`geosim::transfer`] reductions as
    /// [`PlacementState::objective`] — one Eq 2/3 / Eq 5 implementation for
    /// the whole workspace, and identical fp operation order between the
    /// batched and single-destination kernel paths.
    fn objective_from_rows(
        &self,
        env: &CloudEnv,
        gu: &[f64],
        gd: &[f64],
        au: &[f64],
        ad: &[f64],
    ) -> Objective {
        let m = self.num_dcs;
        let transfer_time = geosim::transfer::stage_time_rows(&gu[..m], &gd[..m], env)
            + geosim::transfer::stage_time_rows(&au[..m], &ad[..m], env);
        let upload_cost = geosim::transfer::upload_cost_row(&gu[..m], env)
            + geosim::transfer::upload_cost_row(&au[..m], env);
        Objective {
            transfer_time,
            movement_cost: self.movement_cost,
            runtime_cost: self.num_iterations * upload_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_merges_duplicates_and_sorts() {
        let mut s = MoveScratch::new();
        s.begin_stage();
        s.push_neighbor(5, CntDelta { in_a: -1, in_b: 1, ..Default::default() });
        s.push_neighbor(2, CntDelta { out_a: -1, out_b: 1, ..Default::default() });
        s.push_neighbor(5, CntDelta { out_a: -1, out_b: 1, ..Default::default() });
        s.seal();
        assert_eq!(
            s.neighbors,
            vec![
                (2, CntDelta { out_a: -1, out_b: 1, ..Default::default() }),
                (5, CntDelta { in_a: -1, in_b: 1, out_a: -1, out_b: 1 }),
            ]
        );
        // Idempotent.
        s.seal();
        assert_eq!(s.neighbors.len(), 2);
    }

    #[test]
    fn transitions_cross_thresholds() {
        // 1 in-edge leaves: gather message and mirror both disappear.
        assert_eq!(count_transitions(true, 1, 0, -1, 0), (-1.0, -1.0));
        // First in-edge arrives at an empty cell.
        assert_eq!(count_transitions(true, 0, 0, 1, 0), (1.0, 1.0));
        // 3 -> 2 in-edges: nothing crosses.
        assert_eq!(count_transitions(true, 3, 0, -1, 0), (0.0, 0.0));
        // Low-degree vertices never gather.
        assert_eq!(count_transitions(false, 1, 0, -1, 0), (0.0, -1.0));
        // Out-edge appears while in-edges stay: mirror already present.
        assert_eq!(count_transitions(true, 2, 0, 0, 1), (0.0, 0.0));
        // Last out-edge leaves an out-only cell: mirror disappears.
        assert_eq!(count_transitions(true, 0, 1, 0, -1), (0.0, -1.0));
    }

    #[test]
    fn scratch_resizes_lazily() {
        let mut s = MoveScratch::new();
        s.ensure_m(4);
        assert_eq!(s.objectives().len(), 4);
        assert_eq!(s.dest_gu.len(), 16);
        s.ensure_m(8);
        assert_eq!(s.objectives().len(), 8);
        assert_eq!(s.dest_gu.len(), 64);
    }

    #[test]
    fn scratch_shrink_then_grow_repoisons_nothing_structural() {
        // M=8 → M=4 → M=8. `Vec::resize` truncates on shrink and zero-pads
        // on growth, so lanes written during the wide phase survive a
        // round-trip only below the shrink point — the evaluation kernels
        // therefore re-fill `[..m]` windows on every call rather than
        // trusting buffer contents. The dest arenas are the exception:
        // their all-zero-outside-dirty-rows invariant must hold across a
        // width change (the row stride shifts, invalidating the dirty
        // bookkeeping), so `ensure_m` re-zeroes them wholesale.
        let mut s = MoveScratch::new();
        s.ensure_m(8);
        for buf in [&mut s.mid_gu, &mut s.row_gu, &mut s.one_gu] {
            buf.fill(777.0);
        }
        s.dest_gu.fill(777.0);
        s.dest_dirty = 0b1010_1010;

        s.ensure_m(4);
        assert_eq!(s.objectives().len(), 4);
        assert_eq!((s.mid_gu.len(), s.row_gu.len(), s.one_gu.len()), (4, 4, 4));
        assert_eq!(s.dest_gu.len(), 16);

        s.ensure_m(8);
        assert_eq!(s.objectives().len(), 8);
        assert_eq!(s.dest_gu.len(), 64);
        // Stale poison survives below the shrink point in the len-M
        // buffers; the regrown region is zero. Both halves are overwritten
        // by the kernels' fills.
        assert!(s.mid_gu[..4].iter().all(|&x| x == 777.0));
        assert!(s.mid_gu[4..].iter().all(|&x| x == 0.0));
        // The dest arena came back fully zeroed with no dirty rows.
        assert!(s.dest_gu.iter().all(|&x| x == 0.0));
        assert_eq!(s.dest_dirty, 0);
    }
}
