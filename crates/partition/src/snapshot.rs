//! Verbatim wire encoding of [`PlacementState`] for durable snapshots.
//!
//! Crash-exact recovery needs the restored state to be **bit-identical**
//! to the live one — not merely equivalent under `validate_plan`'s f64
//! tolerances. Rebuilding from masters would re-accumulate the stage
//! loads in a different order and drift by ULPs, so the snapshot instead
//! captures the incrementally-tracked accumulators exactly as they are:
//! every `f64` travels as its raw bits.
//!
//! Only *authoritative* state travels. The packed kernel metadata
//! (`VertexMeta`) and the per-DC edge balance are pure functions of the
//! count lanes, the profile, and the master/class vectors:
//!
//! * `nnz` bit `d` is set iff cell `(v, d)` has a nonzero lane —
//!   [`PlacementState::place_edge`] sets the bit when a lane becomes
//!   nonzero and `unplace_edge` clears it when the pair empties, so
//!   occupancy and the mask never disagree;
//! * `g`/`a` are f32 copies of the profile, `master`/`high` copies of the
//!   vectors;
//! * `edges_per_dc[d]` is the sum of out-count lanes at `d` (each placed
//!   edge increments exactly one out lane).
//!
//! The decoder re-derives them, so a snapshot cannot carry an
//! inconsistent mask. Malformed bytes surface as typed
//! [`WireError`]s — never panics, never a half-valid state.

use geograph::wire::{Reader, WireError};
use geograph::{DcId, MAX_DCS};
use geosim::StageLoads;

use crate::profile::TrafficProfile;
use crate::state::{PlacementState, VertexMeta};

fn put_loads(out: &mut Vec<u8>, loads: &StageLoads, m: usize) {
    for d in 0..m {
        out.extend_from_slice(&loads.up(d as DcId).to_bits().to_le_bytes());
    }
    for d in 0..m {
        out.extend_from_slice(&loads.down(d as DcId).to_bits().to_le_bytes());
    }
}

fn take_loads(r: &mut Reader<'_>, m: usize) -> Result<StageLoads, WireError> {
    let mut loads = StageLoads::new(m);
    // Adding onto a zero accumulator is exact, so the restored loads carry
    // the encoded bits verbatim.
    for d in 0..m {
        loads.add_up(d as DcId, r.f64()?);
    }
    for d in 0..m {
        loads.add_down(d as DcId, r.f64()?);
    }
    Ok(loads)
}

/// Appends the verbatim wire form of `state` to `out`.
pub fn encode_placement(state: &PlacementState, out: &mut Vec<u8>) {
    let n = state.masters.len();
    let m = state.num_dcs;
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&state.num_iterations.to_bits().to_le_bytes());
    out.extend_from_slice(&state.movement_cost.to_bits().to_le_bytes());
    out.extend_from_slice(&state.masters);
    out.extend(state.is_high.iter().map(|&h| h as u8));
    for &c in &state.counts {
        out.extend_from_slice(&c.to_le_bytes());
    }
    put_loads(out, &state.gather, m);
    put_loads(out, &state.apply, m);
    for &g in &state.profile.gather_bytes {
        out.extend_from_slice(&g.to_le_bytes());
    }
    for &a in &state.profile.apply_bytes {
        out.extend_from_slice(&a.to_le_bytes());
    }
}

/// Decodes one placement state from `r`, re-deriving the kernel metadata
/// and per-DC balance from the authoritative arrays.
pub fn decode_placement(r: &mut Reader<'_>) -> Result<PlacementState, WireError> {
    let n = r.u64()? as usize;
    let m = r.u32()? as usize;
    if m == 0 || m > MAX_DCS {
        return Err(WireError::Malformed("DC count out of range"));
    }
    // One u8 per vertex is the cheapest array; bound n by it before any
    // sized allocation so a corrupt count fails as Truncated, not OOM.
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let num_iterations = r.f64()?;
    let movement_cost = r.f64()?;
    let masters: Vec<DcId> = r.take(n)?.to_vec();
    if masters.iter().any(|&d| (d as usize) >= m) {
        return Err(WireError::Malformed("master out of range"));
    }
    let is_high: Vec<bool> = r.take(n)?.iter().map(|&b| b != 0).collect();
    let counts = r.u32s(n * m * 2)?;
    let gather = take_loads(r, m)?;
    let apply = take_loads(r, m)?;
    let gather_bytes = r.f32s(n)?;
    let apply_bytes = r.f32s(n)?;

    let mut edges_per_dc = vec![0u64; m];
    let meta: Vec<VertexMeta> = (0..n)
        .map(|v| {
            let row = &counts[v * m * 2..(v + 1) * m * 2];
            let mut nnz = 0u64;
            for (d, pair) in row.chunks_exact(2).enumerate() {
                if pair[0] | pair[1] != 0 {
                    nnz |= 1u64 << d;
                }
                edges_per_dc[d] += pair[1] as u64;
            }
            VertexMeta {
                nnz,
                g: gather_bytes[v],
                a: apply_bytes[v],
                master: masters[v],
                high: is_high[v],
            }
        })
        .collect();

    Ok(PlacementState {
        num_dcs: m,
        masters,
        is_high,
        counts,
        meta,
        edges_per_dc,
        gather,
        apply,
        movement_cost,
        profile: TrafficProfile { gather_bytes, apply_bytes },
        num_iterations,
    })
}

/// `state` as a standalone byte blob.
pub fn placement_to_bytes(state: &PlacementState) -> Vec<u8> {
    let n = state.masters.len();
    let mut out = Vec::with_capacity(64 + n * (10 + state.num_dcs * 8));
    encode_placement(state, &mut out);
    out
}

/// Decodes a standalone placement blob, requiring full consumption.
pub fn placement_from_bytes(bytes: &[u8]) -> Result<PlacementState, WireError> {
    let mut r = Reader::new(bytes);
    let state = decode_placement(&mut r)?;
    r.finish()?;
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridState;
    use geograph::{GeoGraph, GraphBuilder, LocalityConfig};
    use geosim::CloudEnv;

    fn build() -> (GeoGraph, CloudEnv, PlacementState, usize) {
        let mut b = GraphBuilder::new(32);
        for i in 0..31u32 {
            b.add_edges([(i, i + 1), (i, (i * 7 + 3) % 32)]);
        }
        let geo = GeoGraph::from_graph(b.build(), &LocalityConfig::uniform(8, 11));
        let env = geosim::regions::ec2_eight_regions();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let hybrid =
            HybridState::try_from_masters(&geo, &env, geo.locations.clone(), 3, profile, 10.0)
                .unwrap();
        let (state, theta) = hybrid.into_parts();
        (geo, env, state, theta)
    }

    fn assert_identical(a: &PlacementState, b: &PlacementState) {
        assert_eq!(a.num_dcs, b.num_dcs);
        assert_eq!(a.masters, b.masters);
        assert_eq!(a.is_high, b.is_high);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.meta, b.meta);
        assert_eq!(a.edges_per_dc, b.edges_per_dc);
        assert_eq!(a.movement_cost.to_bits(), b.movement_cost.to_bits());
        assert_eq!(a.num_iterations.to_bits(), b.num_iterations.to_bits());
        assert_eq!(a.profile, b.profile);
        for d in 0..a.num_dcs as DcId {
            assert_eq!(a.gather.up(d).to_bits(), b.gather.up(d).to_bits());
            assert_eq!(a.gather.down(d).to_bits(), b.gather.down(d).to_bits());
            assert_eq!(a.apply.up(d).to_bits(), b.apply.up(d).to_bits());
            assert_eq!(a.apply.down(d).to_bits(), b.apply.down(d).to_bits());
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let (_, _, state, _) = build();
        let restored = placement_from_bytes(&placement_to_bytes(&state)).unwrap();
        assert_identical(&state, &restored);
    }

    #[test]
    fn round_trip_survives_validate_plan() {
        let (geo, env, state, theta) = build();
        let restored = placement_from_bytes(&placement_to_bytes(&state)).unwrap();
        let hybrid = HybridState::from_parts(restored, theta, &geo);
        hybrid.validate_plan(&env).unwrap();
    }

    #[test]
    fn truncation_never_panics() {
        let (_, _, state, _) = build();
        let bytes = placement_to_bytes(&state);
        for len in (0..bytes.len()).step_by(7) {
            assert!(placement_from_bytes(&bytes[..len]).is_err(), "len {len} decoded");
        }
    }

    #[test]
    fn malformed_master_rejected() {
        let (_, _, state, _) = build();
        let mut bytes = placement_to_bytes(&state);
        bytes[28] = 99; // first master, num_dcs = 4
        assert!(matches!(
            placement_from_bytes(&bytes),
            Err(WireError::Malformed("master out of range"))
        ));
    }
}
