//! Hybrid-cut placement: the model RLCut trains over (§III-B, §IV-B).
//!
//! The *state* is the master-location vector. Edge placement is fully
//! derived from it (paper §IV-B):
//!
//! * in-edges of a **low-degree** vertex `v` are placed at `v`'s master;
//! * each in-edge `(u, v)` of a **high-degree** `v` is placed at `u`'s
//!   master;
//! * mirrors exist wherever a vertex's incident edges land.
//!
//! [`HybridState::evaluate_all_moves`] projects "move vertex `v` to DC
//! `i`" for **all** `M` destinations onto the objective from a single
//! `O(deg(v))` neighborhood sweep (the [`crate::kernel`] batched path) —
//! move scoring is performed for every sampled agent per training
//! iteration and dominates RLCut's training cost, which is why the paper's
//! straggler mitigation (§V-B) schedules agents by vertex degree.
//! [`HybridState::evaluate_move`] is the single-destination wrapper over
//! the same kernel and agrees with the batched results bit-for-bit.

use geograph::GeoGraph;
use geosim::CloudEnv;

use crate::error::PlanError;
use crate::kernel::{self, CntDelta, MoveScratch};
use crate::profile::TrafficProfile;
use crate::state::{Objective, PlacementState};
use crate::{DcId, VertexId};

/// Hybrid-cut placement state over a borrowed [`GeoGraph`].
#[derive(Clone, Debug)]
pub struct HybridState<'g> {
    geo: &'g GeoGraph,
    core: PlacementState,
    theta: usize,
}

impl<'g> HybridState<'g> {
    /// Builds hybrid-cut state from explicit master locations, panicking on
    /// an out-of-range master. Internal callers (trainer, baselines) whose
    /// masters are constructed in-range use this; external plan input goes
    /// through [`Self::try_from_masters`].
    pub fn from_masters(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        masters: Vec<DcId>,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        Self::try_from_masters(geo, env, masters, theta, profile, num_iterations)
            .unwrap_or_else(|e| panic!("invalid master assignment: {e}"))
    }

    /// Builds hybrid-cut state from explicit master locations, returning a
    /// typed [`PlanError`] when any master names a DC outside the
    /// environment — the entry point for plan files and other external
    /// input.
    pub fn try_from_masters(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        masters: Vec<DcId>,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Result<Self, PlanError> {
        assert_eq!(masters.len(), geo.num_vertices());
        assert_eq!(env.num_dcs(), geo.num_dcs);
        if let Some((vertex, &dc)) =
            masters.iter().enumerate().find(|&(_, &d)| d as usize >= env.num_dcs())
        {
            return Err(PlanError::MasterOutOfRange {
                vertex: vertex as VertexId,
                dc,
                num_dcs: env.num_dcs(),
            });
        }
        let is_high = geograph::degree::classify_high_degree(&geo.graph, theta);
        let edge_dc = |u: VertexId, v: VertexId| -> DcId {
            if is_high[v as usize] {
                masters[u as usize]
            } else {
                masters[v as usize]
            }
        };
        let core = PlacementState::from_edge_placement(
            env,
            geo.num_vertices(),
            geo.graph.edges().map(|(u, v)| (u, v, edge_dc(u, v))),
            masters.clone(),
            is_high.clone(),
            &geo.locations,
            &geo.data_sizes,
            profile,
            num_iterations,
        )?;
        Ok(HybridState { geo, core, theta })
    }

    /// The *natural* partitioning: every master at its data's home DC —
    /// the paper's initial state before (re)partitioning (§II-B).
    pub fn natural(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        Self::from_masters(geo, env, geo.locations.clone(), theta, profile, num_iterations)
    }

    /// The underlying placement state (counts, loads, metrics).
    pub fn core(&self) -> &PlacementState {
        &self.core
    }

    /// The graph this plan partitions.
    pub fn geo(&self) -> &'g GeoGraph {
        self.geo
    }

    /// The hybrid-cut degree threshold θ.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Current master of `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> DcId {
        self.core.master(v)
    }

    /// Current objective (Eq 1 + Eq 4/5).
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        self.core.objective(env)
    }

    /// Overwrites the accumulated Eq 4 movement cost — see
    /// [`PlacementState::override_movement_cost`]. Used by checkpoint
    /// restore, where the cost accumulated incrementally before the crash
    /// cannot be recomputed from the masters alone.
    pub fn override_movement_cost(&mut self, cost: f64) {
        self.core.override_movement_cost(cost);
    }

    /// Evaluates moving `v`'s master to **every** DC in one neighborhood
    /// sweep, without mutating the state. The returned slice lives in
    /// `scratch`, indexed by destination DC; the slot of the current
    /// master holds the unchanged current objective.
    ///
    /// Cost: one `O(deg(v))` sweep + `O(deg(v) · M + M²)` projection —
    /// versus `M` independent [`Self::evaluate_move`] calls, which it
    /// matches bit-for-bit.
    pub fn evaluate_all_moves<'s>(
        &self,
        env: &CloudEnv,
        v: VertexId,
        scratch: &'s mut MoveScratch,
    ) -> &'s [Objective] {
        self.collect_deltas_into(v, scratch);
        self.core.evaluate_all_moves(env, v, scratch);
        // The kernel reports the current plan's movement cost; patch in the
        // per-destination Eq 4 delta for every actual move.
        let a = self.core.master(v);
        let loc = self.geo.locations[v as usize];
        let size = self.geo.data_sizes[v as usize];
        let base = self.core.movement_cost - geosim::cost::vertex_move_cost(env, loc, a, size);
        for (d, obj) in scratch.objectives_mut().iter_mut().enumerate() {
            if d != a as usize {
                obj.movement_cost =
                    base + geosim::cost::vertex_move_cost(env, loc, d as DcId, size);
            }
        }
        scratch.objectives()
    }

    /// Evaluates moving `v`'s master to `to` without mutating the state,
    /// using the caller's scratch arena. Cost: `O(deg(v) + M)`.
    /// Bit-identical to slot `to` of [`Self::evaluate_all_moves`].
    pub fn evaluate_move_with(
        &self,
        env: &CloudEnv,
        v: VertexId,
        to: DcId,
        scratch: &mut MoveScratch,
    ) -> Objective {
        let a = self.core.master(v);
        if a == to {
            return self.core.objective(env);
        }
        self.collect_deltas_into(v, scratch);
        let mut obj = self.core.evaluate_move_to(env, v, to, scratch);
        let loc = self.geo.locations[v as usize];
        let size = self.geo.data_sizes[v as usize];
        let base = self.core.movement_cost - geosim::cost::vertex_move_cost(env, loc, a, size);
        obj.movement_cost = base + geosim::cost::vertex_move_cost(env, loc, to, size);
        obj
    }

    /// [`Self::evaluate_move_with`] over this thread's shared scratch —
    /// kept for callers that don't manage a per-worker arena.
    pub fn evaluate_move(&self, env: &CloudEnv, v: VertexId, to: DcId) -> Objective {
        kernel::with_scratch(|scratch| self.evaluate_move_with(env, v, to, scratch))
    }

    /// Moves `v`'s master to `to`, updating counts, loads, balance and cost
    /// incrementally through the caller's scratch arena. Cost:
    /// `O(deg(v) · M)` (moves are far rarer than evaluations — only
    /// accepted migrations pay this).
    pub fn apply_move_with(
        &mut self,
        env: &CloudEnv,
        v: VertexId,
        to: DcId,
        scratch: &mut MoveScratch,
    ) {
        let a = self.core.master(v);
        if a == to {
            return;
        }
        let m = self.core.num_dcs;
        self.collect_deltas_into(v, scratch);
        let self_delta = scratch.self_delta;

        // Remove the old contributions of every affected vertex.
        self.core.remove_vertex_loads(v);
        for &(x, _) in &scratch.neighbors {
            self.core.remove_vertex_loads(x);
        }

        // Mutate the count rows (lane 0 = in, lane 1 = out of the
        // interleaved plane pair), keeping the per-vertex occupancy mask
        // exact: the kernel trusts a clear bit to mean an all-zero cell.
        let apply_delta = |counts: &mut Vec<u32>,
                           meta: &mut Vec<crate::state::VertexMeta>,
                           row: usize,
                           dc: usize,
                           lane: usize,
                           delta: i64| {
            if delta != 0 {
                let idx = (row * m + dc) * 2;
                let cell = &mut counts[idx + lane];
                *cell = (*cell as i64 + delta) as u32;
                if (counts[idx] | counts[idx + 1]) == 0 {
                    meta[row].nnz &= !(1u64 << dc);
                } else {
                    meta[row].nnz |= 1u64 << dc;
                }
            }
        };
        let core = &mut self.core;
        apply_delta(&mut core.counts, &mut core.meta, v as usize, a as usize, 0, self_delta.in_a);
        apply_delta(&mut core.counts, &mut core.meta, v as usize, to as usize, 0, self_delta.in_b);
        apply_delta(&mut core.counts, &mut core.meta, v as usize, a as usize, 1, self_delta.out_a);
        apply_delta(&mut core.counts, &mut core.meta, v as usize, to as usize, 1, self_delta.out_b);
        for &(x, d) in &scratch.neighbors {
            apply_delta(&mut core.counts, &mut core.meta, x as usize, a as usize, 0, d.in_a);
            apply_delta(&mut core.counts, &mut core.meta, x as usize, to as usize, 0, d.in_b);
            apply_delta(&mut core.counts, &mut core.meta, x as usize, a as usize, 1, d.out_a);
            apply_delta(&mut core.counts, &mut core.meta, x as usize, to as usize, 1, d.out_b);
        }

        // Moved edges change the per-DC balance. Every edge that moved is
        // one of v's in-edges (low v) or an out-edge to a high destination
        // (or a self-loop); `-self_delta.out_a - ...` counts them exactly
        // once via the out side for out-moves plus the in side for in-moves
        // of *other* sources. Count directly instead:
        let moved_edges = (-self_delta.in_a).max(0) as u64
            + scratch.neighbors.iter().map(|&(_, d)| (-d.in_a).max(0) as u64).sum::<u64>();
        self.core.edges_per_dc[a as usize] -= moved_edges;
        self.core.edges_per_dc[to as usize] += moved_edges;

        // Master move + movement cost.
        self.core.movement_cost += geosim::cost::vertex_move_cost(
            env,
            self.geo.locations[v as usize],
            to,
            self.geo.data_sizes[v as usize],
        ) - geosim::cost::vertex_move_cost(
            env,
            self.geo.locations[v as usize],
            a,
            self.geo.data_sizes[v as usize],
        );
        self.core.masters[v as usize] = to;
        self.core.meta[v as usize].master = to;

        // Re-add contributions under the new placement.
        self.core.add_vertex_loads(v);
        for &(x, _) in &scratch.neighbors {
            self.core.add_vertex_loads(x);
        }
    }

    /// [`Self::apply_move_with`] over this thread's shared scratch.
    pub fn apply_move(&mut self, env: &CloudEnv, v: VertexId, to: DcId) {
        kernel::with_scratch(|scratch| self.apply_move_with(env, v, to, scratch))
    }

    /// Stages into `scratch` the in/out count deltas a move of `v` away
    /// from its current master causes, for `v` itself and for each
    /// affected neighbor. Self-loops fold into the self delta. The deltas
    /// are destination-independent (any `b ≠ a` receives the same counts
    /// DC `a` loses), which is what makes batched evaluation possible.
    fn collect_deltas_into(&self, v: VertexId, scratch: &mut MoveScratch) {
        scratch.begin_stage();
        let mut self_delta = CntDelta::default();
        if !self.core.is_high[v as usize] {
            // All in-edges of v are placed at v's master and move with it.
            for &u in self.geo.graph.in_neighbors(v) {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
                if u == v {
                    self_delta.out_a -= 1;
                    self_delta.out_b += 1;
                } else {
                    scratch
                        .push_neighbor(u, CntDelta { out_a: -1, out_b: 1, ..CntDelta::default() });
                }
            }
        }
        // Out-edges (v, w) with high-degree w are placed at v's master and
        // move with it. (A self-loop on a high v is covered here.)
        for &w in self.geo.graph.out_neighbors(v) {
            if !self.core.is_high[w as usize] {
                continue;
            }
            self_delta.out_a -= 1;
            self_delta.out_b += 1;
            if w == v {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
            } else {
                scratch.push_neighbor(w, CntDelta { in_a: -1, in_b: 1, ..CntDelta::default() });
            }
        }
        scratch.self_delta = self_delta;
        scratch.seal();
    }

    /// Rebuilds the state from scratch and checks the incremental
    /// bookkeeping matches, returning a typed error naming the first
    /// divergence instead of panicking.
    pub fn validate_plan(&self, env: &CloudEnv) -> Result<(), PlanError> {
        let fresh = HybridState::from_masters(
            self.geo,
            env,
            self.core.masters.clone(),
            self.theta,
            self.core.profile.clone(),
            self.core.num_iterations,
        );
        let m = self.core.num_dcs;
        {
            let ours = &self.core.counts;
            let theirs = &fresh.core.counts;
            if let Some(i) = (0..ours.len()).find(|&i| ours[i] != theirs[i]) {
                let cell = i / 2;
                return Err(PlanError::CountDrift {
                    array: if i % 2 == 0 { "in_cnt" } else { "out_cnt" },
                    vertex: (cell / m) as VertexId,
                    dc: (cell % m) as DcId,
                    incremental: ours[i],
                    fresh: theirs[i],
                });
            }
        }
        for (v, (ours, fresh)) in self.core.meta.iter().zip(&fresh.core.meta).enumerate() {
            if ours.nnz != fresh.nnz {
                return Err(PlanError::MetaDrift {
                    field: "nnz",
                    vertex: v as VertexId,
                    incremental: ours.nnz,
                    fresh: fresh.nnz,
                });
            }
            if ours.master != self.core.masters[v] {
                return Err(PlanError::MetaDrift {
                    field: "master",
                    vertex: v as VertexId,
                    incremental: ours.master as u64,
                    fresh: self.core.masters[v] as u64,
                });
            }
        }
        for d in 0..m {
            if self.core.edges_per_dc[d] != fresh.core.edges_per_dc[d] {
                return Err(PlanError::EdgeBalanceDrift {
                    dc: d as DcId,
                    incremental: self.core.edges_per_dc[d],
                    fresh: fresh.core.edges_per_dc[d],
                });
            }
        }
        for d in 0..m as DcId {
            for (ours, theirs, stage) in [
                (self.core.gather.up(d), fresh.core.gather.up(d), "gather.up"),
                (self.core.gather.down(d), fresh.core.gather.down(d), "gather.down"),
                (self.core.apply.up(d), fresh.core.apply.up(d), "apply.up"),
                (self.core.apply.down(d), fresh.core.apply.down(d), "apply.down"),
            ] {
                if (ours - theirs).abs() > 1e-6 * theirs.abs().max(1.0) {
                    return Err(PlanError::LoadDrift {
                        stage,
                        dc: d,
                        incremental: ours,
                        fresh: theirs,
                    });
                }
            }
        }
        let mc = fresh.core.movement_cost;
        if (self.core.movement_cost - mc).abs() > 1e-9 * mc.abs().max(1.0) {
            return Err(PlanError::MovementCostDrift {
                incremental: self.core.movement_cost,
                fresh: mc,
            });
        }

        // The batched kernel must agree with per-destination evaluation
        // bit-for-bit on a deterministic sample of vertices.
        let n = self.core.num_vertices();
        let mut batch = MoveScratch::new();
        let mut single = MoveScratch::new();
        for v in (0..n).step_by((n / 16).max(1)) {
            let v = v as VertexId;
            self.evaluate_all_moves(env, v, &mut batch);
            for d in 0..m as DcId {
                let b = batch.objectives()[d as usize];
                let s = self.evaluate_move_with(env, v, d, &mut single);
                if b.transfer_time.to_bits() != s.transfer_time.to_bits()
                    || b.movement_cost.to_bits() != s.movement_cost.to_bits()
                    || b.runtime_cost.to_bits() != s.runtime_cost.to_bits()
                {
                    return Err(PlanError::KernelDivergence { vertex: v, dc: d });
                }
            }
        }
        Ok(())
    }

    /// Panicking wrapper over [`Self::validate_plan`] — a test/debug aid.
    pub fn check_consistency(&self, env: &CloudEnv) {
        if let Err(e) = self.validate_plan(env) {
            panic!("plan consistency check failed: {e}");
        }
    }

    /// Debug-build-only consistency check for internal hot paths: free in
    /// release builds, full [`Self::validate_plan`] under `cfg(debug_assertions)`.
    #[inline]
    pub fn debug_validate(&self, env: &CloudEnv) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.validate_plan(env) {
            panic!("plan consistency check failed: {e}");
        }
        #[cfg(not(debug_assertions))]
        let _ = env;
    }

    /// Checks that the plan touches no dark DC: no master and no mirror on
    /// any DC with `dead[dc] == true`.
    pub fn validate_against_faults(&self, dead: &[bool]) -> Result<(), PlanError> {
        assert_eq!(dead.len(), self.core.num_dcs);
        let dead_mask =
            dead.iter().enumerate().fold(0u64, |m, (d, &x)| if x { m | (1u64 << d) } else { m });
        if dead_mask == 0 {
            return Ok(());
        }
        for v in 0..self.core.num_vertices() as VertexId {
            let master = self.core.master(v);
            if dead[master as usize] {
                return Err(PlanError::MasterOnDeadDc { vertex: v, dc: master });
            }
            let on_dead = self.core.mirror_mask(v) & dead_mask;
            if on_dead != 0 {
                return Err(PlanError::MirrorOnDeadDc {
                    vertex: v,
                    dc: on_dead.trailing_zeros() as DcId,
                });
            }
        }
        Ok(())
    }

    /// Re-places every master resident on a dark DC onto the best live
    /// destination, scored by the batched move-evaluation kernel
    /// (transfer time first, then total monetary cost, then DC id — fully
    /// deterministic).
    ///
    /// In the hybrid-cut model edge placement and mirrors are *derived*
    /// from the master vector (§IV-B), so once no master lives on a dead
    /// DC, no edge and hence no mirror remains there either — one pass
    /// over the masters evacuates the whole plan, which
    /// [`Self::validate_against_faults`] re-checks before returning.
    ///
    /// `env` should be the *current* (possibly degraded) environment so
    /// evacuation targets are scored under the bandwidths that actually
    /// hold during the fault.
    pub fn evacuate(
        &mut self,
        env: &CloudEnv,
        dead: &[bool],
        scratch: &mut MoveScratch,
    ) -> Result<EvacuationReport, PlanError> {
        assert_eq!(dead.len(), self.core.num_dcs);
        if dead.iter().all(|&d| d) {
            return Err(PlanError::NoLiveDc);
        }
        let mut moved = 0usize;
        for v in 0..self.core.num_vertices() as VertexId {
            let from = self.core.master(v);
            if !dead[from as usize] {
                continue;
            }
            let objs = self.evaluate_all_moves(env, v, scratch);
            let mut best: Option<(DcId, Objective)> = None;
            for (d, obj) in objs.iter().enumerate() {
                if dead[d] {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, b)) => {
                        obj.transfer_time < b.transfer_time
                            || (obj.transfer_time == b.transfer_time
                                && obj.total_cost() < b.total_cost())
                    }
                };
                if better {
                    best = Some((d as DcId, *obj));
                }
            }
            let (to, _) = best.expect("at least one live DC exists");
            self.apply_move_with(env, v, to, scratch);
            moved += 1;
        }
        self.validate_against_faults(dead)?;
        Ok(EvacuationReport { vertices_moved: moved, objective: self.objective(env) })
    }
}

/// What [`HybridState::evacuate`] did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvacuationReport {
    /// Number of masters re-placed off dark DCs.
    pub vertices_moved: usize,
    /// The plan's objective after evacuation, under the faulted environment.
    pub objective: Objective,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup(seed: u64) -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), seed);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed));
        (geo, ec2_eight_regions())
    }

    fn state<'g>(geo: &'g GeoGraph, env: &CloudEnv) -> HybridState<'g> {
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        HybridState::natural(geo, env, theta, profile, 10.0)
    }

    #[test]
    fn natural_state_is_consistent() {
        let (geo, env) = setup(1);
        state(&geo, &env).check_consistency(&env);
    }

    #[test]
    fn evaluate_move_matches_apply_move() {
        let (geo, env) = setup(2);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let to = rng.gen_range(0..geo.num_dcs) as DcId;
            let predicted = s.evaluate_move(&env, v, to);
            s.apply_move(&env, v, to);
            let actual = s.objective(&env);
            assert!(
                (predicted.transfer_time - actual.transfer_time).abs()
                    <= 1e-9 * actual.transfer_time.max(1e-12),
                "time: predicted {} vs actual {}",
                predicted.transfer_time,
                actual.transfer_time
            );
            assert!(
                (predicted.total_cost() - actual.total_cost()).abs()
                    <= 1e-9 * actual.total_cost().max(1e-12),
                "cost: predicted {} vs actual {}",
                predicted.total_cost(),
                actual.total_cost()
            );
        }
        s.check_consistency(&env);
    }

    #[test]
    fn incremental_stays_consistent_over_many_moves() {
        let (geo, env) = setup(3);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(4);
        for step in 0..500 {
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let to = rng.gen_range(0..geo.num_dcs) as DcId;
            s.apply_move(&env, v, to);
            if step % 100 == 99 {
                s.check_consistency(&env);
            }
        }
    }

    #[test]
    fn move_and_return_restores_objective() {
        let (geo, env) = setup(5);
        let mut s = state(&geo, &env);
        let before = s.objective(&env);
        let v = 7;
        let home = s.master(v);
        let to = (home + 1) % geo.num_dcs as DcId;
        s.apply_move(&env, v, to);
        s.apply_move(&env, v, home);
        let after = s.objective(&env);
        assert!((before.transfer_time - after.transfer_time).abs() < 1e-12);
        assert!((before.total_cost() - after.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn noop_move_is_identity() {
        let (geo, env) = setup(6);
        let mut s = state(&geo, &env);
        let before = s.objective(&env);
        let v = 3;
        let home = s.master(v);
        assert_eq!(s.evaluate_move(&env, v, home).transfer_time, before.transfer_time);
        s.apply_move(&env, v, home);
        assert_eq!(s.objective(&env).transfer_time, before.transfer_time);
    }

    #[test]
    fn natural_plan_has_zero_movement_cost() {
        let (geo, env) = setup(7);
        let s = state(&geo, &env);
        assert_eq!(s.objective(&env).movement_cost, 0.0);
    }

    #[test]
    fn moving_master_away_from_home_costs_money() {
        let (geo, env) = setup(8);
        let mut s = state(&geo, &env);
        let v = 11;
        let to = (s.master(v) + 1) % geo.num_dcs as DcId;
        s.apply_move(&env, v, to);
        assert!(s.objective(&env).movement_cost > 0.0);
    }

    #[test]
    fn centralizing_all_masters_removes_runtime_traffic() {
        let (geo, env) = setup(9);
        let mut s = state(&geo, &env);
        for v in 0..geo.num_vertices() as VertexId {
            s.apply_move(&env, v, 0);
        }
        // Everything co-located: no mirrors, no inter-DC traffic.
        let obj = s.objective(&env);
        assert_eq!(obj.transfer_time, 0.0);
        assert_eq!(obj.runtime_cost, 0.0);
        assert!((s.core().replication_factor() - 1.0).abs() < 1e-12);
        s.check_consistency(&env);
    }

    #[test]
    fn batched_matches_sequential_bitwise() {
        let (geo, env) = setup(11);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut batch = MoveScratch::new();
        let mut single = MoveScratch::new();
        for step in 0..40 {
            // Interleave applied moves so the comparison covers evolving,
            // non-natural states too.
            let mv = rng.gen_range(0..geo.num_vertices()) as VertexId;
            s.apply_move(&env, mv, rng.gen_range(0..geo.num_dcs) as DcId);
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let objs: Vec<_> = s.evaluate_all_moves(&env, v, &mut batch).to_vec();
            for (d, b) in objs.iter().enumerate() {
                let sq = s.evaluate_move_with(&env, v, d as DcId, &mut single);
                assert_eq!(
                    (
                        b.transfer_time.to_bits(),
                        b.movement_cost.to_bits(),
                        b.runtime_cost.to_bits()
                    ),
                    (
                        sq.transfer_time.to_bits(),
                        sq.movement_cost.to_bits(),
                        sq.runtime_cost.to_bits()
                    ),
                    "step {step}: v={v} d={d}: {b:?} vs {sq:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reused_across_env_widths_matches_fresh_bitwise() {
        // One shared MoveScratch cycled M=8 → M=4 → M=8: lanes seeded by
        // the wide environment must never leak into objectives computed
        // after the shrink-then-grow round-trip.
        let (geo8, env8) = setup(21);
        let g4 = rmat(&RmatConfig::social(512, 4096), 22);
        let geo4 = GeoGraph::from_graph(g4, &LocalityConfig::uniform(4, 22));
        let env4 = CloudEnv::new(env8.dcs()[..4].to_vec());

        let s8 = state(&geo8, &env8);
        let theta4 = geograph::degree::suggest_theta(&geo4.graph, 0.05);
        let profile4 = TrafficProfile::uniform(geo4.num_vertices(), 8.0);
        let s4 = HybridState::natural(&geo4, &env4, theta4, profile4, 10.0);

        let mut shared = MoveScratch::new();
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..25 {
            let v8 = rng.gen_range(0..geo8.num_vertices()) as VertexId;
            let v4 = rng.gen_range(0..geo4.num_vertices()) as VertexId;
            s8.evaluate_all_moves(&env8, v8, &mut shared);
            s4.evaluate_all_moves(&env4, v4, &mut shared);
            let reused: Vec<Objective> = s8.evaluate_all_moves(&env8, v8, &mut shared).to_vec();
            let mut fresh = MoveScratch::new();
            let clean = s8.evaluate_all_moves(&env8, v8, &mut fresh);
            for (d, (r, c)) in reused.iter().zip(clean).enumerate() {
                assert_eq!(
                    (
                        r.transfer_time.to_bits(),
                        r.movement_cost.to_bits(),
                        r.runtime_cost.to_bits()
                    ),
                    (
                        c.transfer_time.to_bits(),
                        c.movement_cost.to_bits(),
                        c.runtime_cost.to_bits()
                    ),
                    "v={v8} d={d}: reused {r:?} vs fresh {c:?}"
                );
            }
        }
    }

    #[test]
    fn validate_plan_accepts_fresh_state() {
        let (geo, env) = setup(20);
        assert_eq!(state(&geo, &env).validate_plan(&env), Ok(()));
    }

    #[test]
    fn validate_plan_reports_count_drift() {
        let (geo, env) = setup(21);
        let mut s = state(&geo, &env);
        // Corrupt one count cell (an even index = an in-count lane);
        // validation must name the drift.
        s.core.counts[10] += 1;
        match s.validate_plan(&env) {
            Err(PlanError::CountDrift { array: "in_cnt", .. }) => {}
            other => panic!("expected in_cnt drift, got {other:?}"),
        }
    }

    #[test]
    fn try_from_masters_rejects_out_of_range_master() {
        let (geo, env) = setup(26);
        let mut masters = geo.locations.clone();
        masters[3] = 42;
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        match HybridState::try_from_masters(&geo, &env, masters, 16, profile, 10.0) {
            Err(PlanError::MasterOutOfRange { vertex: 3, dc: 42, num_dcs: 8 }) => {}
            other => panic!("expected master-out-of-range, got {other:?}"),
        }
    }

    #[test]
    fn evacuate_clears_dead_dc() {
        let (geo, env) = setup(22);
        let mut s = state(&geo, &env);
        let mut dead = vec![false; 8];
        dead[2] = true;
        let before_on_dead =
            (0..geo.num_vertices() as VertexId).filter(|&v| s.master(v) == 2).count();
        assert!(before_on_dead > 0, "seed should place masters on DC 2");
        let mut scratch = MoveScratch::new();
        let report = s.evacuate(&env, &dead, &mut scratch).unwrap();
        assert_eq!(report.vertices_moved, before_on_dead);
        assert_eq!(s.validate_against_faults(&dead), Ok(()));
        s.check_consistency(&env);
    }

    #[test]
    fn evacuate_is_deterministic() {
        let (geo, env) = setup(23);
        let mut dead = vec![false; 8];
        dead[0] = true;
        dead[5] = true;
        let mut a = state(&geo, &env);
        let mut b = state(&geo, &env);
        let mut scratch = MoveScratch::new();
        a.evacuate(&env, &dead, &mut scratch).unwrap();
        b.evacuate(&env, &dead, &mut scratch).unwrap();
        assert_eq!(a.core().masters(), b.core().masters());
    }

    #[test]
    fn evacuate_with_no_live_dc_is_an_error() {
        let (geo, env) = setup(24);
        let mut s = state(&geo, &env);
        let mut scratch = MoveScratch::new();
        assert_eq!(s.evacuate(&env, &[true; 8], &mut scratch), Err(PlanError::NoLiveDc));
    }

    #[test]
    fn validate_against_faults_detects_resident_master() {
        let (geo, env) = setup(25);
        let s = state(&geo, &env);
        let dc = s.master(0);
        let mut dead = vec![false; 8];
        dead[dc as usize] = true;
        match s.validate_against_faults(&dead) {
            Err(PlanError::MasterOnDeadDc { .. }) => {}
            other => panic!("expected master-on-dead-DC, got {other:?}"),
        }
    }

    #[test]
    fn hybrid_beats_all_high_on_replication() {
        // The Fig 2 claim: differentiated placement lowers λ versus treating
        // everything as high-degree (vertex-cut-like hashing).
        let (geo, env) = setup(10);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let hybrid = HybridState::from_masters(
            &geo,
            &env,
            geo.locations.clone(),
            theta,
            profile.clone(),
            10.0,
        );
        let all_high =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), 1, profile, 10.0);
        assert!(
            hybrid.core().replication_factor() <= all_high.core().replication_factor(),
            "hybrid λ {} vs all-high λ {}",
            hybrid.core().replication_factor(),
            all_high.core().replication_factor()
        );
    }
}
