//! Hybrid-cut placement: the model RLCut trains over (§III-B, §IV-B).
//!
//! The *state* is the master-location vector. Edge placement is fully
//! derived from it (paper §IV-B):
//!
//! * in-edges of a **low-degree** vertex `v` are placed at `v`'s master;
//! * each in-edge `(u, v)` of a **high-degree** `v` is placed at `u`'s
//!   master;
//! * mirrors exist wherever a vertex's incident edges land.
//!
//! [`HybridState::evaluate_move`] projects "move vertex `v` to DC `i`" onto
//! the objective in `O(deg(v) + M)` without mutating the state — it is
//! called `M` times per agent per training iteration and dominates RLCut's
//! training cost, which is why the paper's straggler mitigation (§V-B)
//! schedules agents by vertex degree.

use geograph::fxhash::FxHashMap;
use geograph::{GeoGraph, MAX_DCS};
use geosim::CloudEnv;

use crate::profile::TrafficProfile;
use crate::state::{Objective, PlacementState};
use crate::{DcId, VertexId};

/// Hybrid-cut placement state over a borrowed [`GeoGraph`].
#[derive(Clone, Debug)]
pub struct HybridState<'g> {
    geo: &'g GeoGraph,
    core: PlacementState,
    theta: usize,
}

/// Count deltas at the move's source/destination DCs for one vertex.
#[derive(Clone, Copy, Debug, Default)]
struct CntDelta {
    in_a: i64,
    in_b: i64,
    out_a: i64,
    out_b: i64,
}

impl<'g> HybridState<'g> {
    /// Builds hybrid-cut state from explicit master locations.
    pub fn from_masters(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        masters: Vec<DcId>,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        assert_eq!(masters.len(), geo.num_vertices());
        assert_eq!(env.num_dcs(), geo.num_dcs);
        let is_high = geograph::degree::classify_high_degree(&geo.graph, theta);
        let edge_dc = |u: VertexId, v: VertexId| -> DcId {
            if is_high[v as usize] {
                masters[u as usize]
            } else {
                masters[v as usize]
            }
        };
        let core = PlacementState::from_edge_placement(
            env,
            geo.num_vertices(),
            geo.graph.edges().map(|(u, v)| (u, v, edge_dc(u, v))),
            masters.clone(),
            is_high.clone(),
            &geo.locations,
            &geo.data_sizes,
            profile,
            num_iterations,
        );
        HybridState { geo, core, theta }
    }

    /// The *natural* partitioning: every master at its data's home DC —
    /// the paper's initial state before (re)partitioning (§II-B).
    pub fn natural(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        Self::from_masters(geo, env, geo.locations.clone(), theta, profile, num_iterations)
    }

    /// The underlying placement state (counts, loads, metrics).
    pub fn core(&self) -> &PlacementState {
        &self.core
    }

    /// The graph this plan partitions.
    pub fn geo(&self) -> &'g GeoGraph {
        self.geo
    }

    /// The hybrid-cut degree threshold θ.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Current master of `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> DcId {
        self.core.master(v)
    }

    /// Current objective (Eq 1 + Eq 4/5).
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        self.core.objective(env)
    }

    /// Evaluates moving `v`'s master to `to` without mutating the state.
    /// Cost: `O(deg(v) + M)`.
    pub fn evaluate_move(&self, env: &CloudEnv, v: VertexId, to: DcId) -> Objective {
        let a = self.core.master(v);
        if a == to {
            return self.core.objective(env);
        }
        let m = self.core.num_dcs;
        let (self_delta, neighbor_deltas) = self.collect_deltas(v, to);

        // Stack scratch copies of the per-DC loads (M <= 64).
        let mut gu = [0.0f64; MAX_DCS];
        let mut gd = [0.0f64; MAX_DCS];
        let mut au = [0.0f64; MAX_DCS];
        let mut ad = [0.0f64; MAX_DCS];
        gu[..m].copy_from_slice(self.core.gather.up_slice());
        gd[..m].copy_from_slice(self.core.gather.down_slice());
        au[..m].copy_from_slice(self.core.apply.up_slice());
        ad[..m].copy_from_slice(self.core.apply.down_slice());

        // 1. Remove v's entire current contribution.
        self.project_vertex(v, a, CntDelta::default(), a, to, -1.0, &mut gu, &mut gd, &mut au, &mut ad);
        // 2. Neighbor presence/in-edge transitions at DCs a and b.
        for (&x, &delta) in &neighbor_deltas {
            self.project_neighbor(x, delta, a, to, &mut gu, &mut gd, &mut au, &mut ad);
        }
        // 3. Re-add v with adjusted counts and master `to`.
        self.project_vertex(v, to, self_delta, a, to, 1.0, &mut gu, &mut gd, &mut au, &mut ad);

        let transfer_time = stage_time(&gu[..m], &gd[..m], env) + stage_time(&au[..m], &ad[..m], env);
        let mut upload_cost = 0.0;
        for d in 0..m {
            upload_cost += (gu[d] + au[d]) * env.price(d as DcId);
        }
        let movement_cost = self.core.movement_cost
            + geosim::cost::vertex_move_cost(env, self.geo.locations[v as usize], to, self.geo.data_sizes[v as usize])
            - geosim::cost::vertex_move_cost(env, self.geo.locations[v as usize], a, self.geo.data_sizes[v as usize]);
        Objective {
            transfer_time,
            movement_cost,
            runtime_cost: self.core.num_iterations * upload_cost,
        }
    }

    /// Moves `v`'s master to `to`, updating counts, loads, balance and cost
    /// incrementally. Cost: `O(deg(v) · M)` (moves are far rarer than
    /// evaluations — only accepted migrations pay this).
    pub fn apply_move(&mut self, env: &CloudEnv, v: VertexId, to: DcId) {
        let a = self.core.master(v);
        if a == to {
            return;
        }
        let m = self.core.num_dcs;
        let (self_delta, neighbor_deltas) = self.collect_deltas(v, to);

        // Remove the old contributions of every affected vertex.
        self.core.remove_vertex_loads(v);
        for &x in neighbor_deltas.keys() {
            self.core.remove_vertex_loads(x);
        }

        // Mutate the count rows.
        let apply_delta = |cnt: &mut Vec<u32>, row: usize, dc: usize, delta: i64| {
            if delta != 0 {
                let cell = &mut cnt[row * m + dc];
                *cell = (*cell as i64 + delta) as u32;
            }
        };
        apply_delta(&mut self.core.in_cnt, v as usize, a as usize, self_delta.in_a);
        apply_delta(&mut self.core.in_cnt, v as usize, to as usize, self_delta.in_b);
        apply_delta(&mut self.core.out_cnt, v as usize, a as usize, self_delta.out_a);
        apply_delta(&mut self.core.out_cnt, v as usize, to as usize, self_delta.out_b);
        for (&x, &d) in &neighbor_deltas {
            apply_delta(&mut self.core.in_cnt, x as usize, a as usize, d.in_a);
            apply_delta(&mut self.core.in_cnt, x as usize, to as usize, d.in_b);
            apply_delta(&mut self.core.out_cnt, x as usize, a as usize, d.out_a);
            apply_delta(&mut self.core.out_cnt, x as usize, to as usize, d.out_b);
        }

        // Moved edges change the per-DC balance. Every edge that moved is
        // one of v's in-edges (low v) or an out-edge to a high destination
        // (or a self-loop); `-self_delta.out_a - ...` counts them exactly
        // once via the out side for out-moves plus the in side for in-moves
        // of *other* sources. Count directly instead:
        let moved_edges = (-self_delta.in_a).max(0) as u64
            + neighbor_deltas.values().map(|d| (-d.in_a).max(0) as u64).sum::<u64>();
        self.core.edges_per_dc[a as usize] -= moved_edges;
        self.core.edges_per_dc[to as usize] += moved_edges;

        // Master move + movement cost.
        self.core.movement_cost += geosim::cost::vertex_move_cost(
            env,
            self.geo.locations[v as usize],
            to,
            self.geo.data_sizes[v as usize],
        ) - geosim::cost::vertex_move_cost(
            env,
            self.geo.locations[v as usize],
            a,
            self.geo.data_sizes[v as usize],
        );
        self.core.masters[v as usize] = to;

        // Re-add contributions under the new placement.
        self.core.add_vertex_loads(v);
        for &x in neighbor_deltas.keys() {
            self.core.add_vertex_loads(x);
        }
    }

    /// Collects the in/out count deltas a move of `v` from its current
    /// master `a` to `b` causes, for `v` itself and for each affected
    /// neighbor. Self-loops fold into the self delta.
    fn collect_deltas(&self, v: VertexId, _to: DcId) -> (CntDelta, FxHashMap<VertexId, CntDelta>) {
        let mut self_delta = CntDelta::default();
        let mut neighbors: FxHashMap<VertexId, CntDelta> = FxHashMap::default();
        if !self.core.is_high[v as usize] {
            // All in-edges of v are placed at v's master and move with it.
            for &u in self.geo.graph.in_neighbors(v) {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
                if u == v {
                    self_delta.out_a -= 1;
                    self_delta.out_b += 1;
                } else {
                    let e = neighbors.entry(u).or_default();
                    e.out_a -= 1;
                    e.out_b += 1;
                }
            }
        }
        // Out-edges (v, w) with high-degree w are placed at v's master and
        // move with it. (A self-loop on a high v is covered here.)
        for &w in self.geo.graph.out_neighbors(v) {
            if !self.core.is_high[w as usize] {
                continue;
            }
            self_delta.out_a -= 1;
            self_delta.out_b += 1;
            if w == v {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
            } else {
                let e = neighbors.entry(w).or_default();
                e.in_a -= 1;
                e.in_b += 1;
            }
        }
        (self_delta, neighbors)
    }

    /// Projects adding (`sign = 1`) or removing (`sign = -1`) vertex `v`'s
    /// full traffic contribution onto scratch loads, with its count rows
    /// adjusted by `delta` at DCs `a`/`b` and master at `master`.
    #[allow(clippy::too_many_arguments)]
    fn project_vertex(
        &self,
        v: VertexId,
        master: DcId,
        delta: CntDelta,
        a: DcId,
        b: DcId,
        sign: f64,
        gu: &mut [f64],
        gd: &mut [f64],
        au: &mut [f64],
        ad: &mut [f64],
    ) {
        let m = self.core.num_dcs;
        let base = v as usize * m;
        let g = self.core.profile.g(v) * sign;
        let a_bytes = self.core.profile.a(v) * sign;
        let high = self.core.is_high[v as usize];
        let master = master as usize;
        for d in 0..m {
            if d == master {
                continue;
            }
            let mut in_c = self.core.in_cnt[base + d] as i64;
            let mut out_c = self.core.out_cnt[base + d] as i64;
            if d == a as usize {
                in_c += delta.in_a;
                out_c += delta.out_a;
            } else if d == b as usize {
                in_c += delta.in_b;
                out_c += delta.out_b;
            }
            debug_assert!(in_c >= 0 && out_c >= 0);
            if high && in_c > 0 {
                gu[d] += g;
                gd[master] += g;
            }
            if in_c + out_c > 0 {
                au[master] += a_bytes;
                ad[d] += a_bytes;
            }
        }
    }

    /// Projects a neighbor's presence/in-edge threshold transitions at DCs
    /// `a` and `b` onto scratch loads (O(1): only those two DCs change).
    #[allow(clippy::too_many_arguments)]
    fn project_neighbor(
        &self,
        x: VertexId,
        delta: CntDelta,
        a: DcId,
        b: DcId,
        gu: &mut [f64],
        gd: &mut [f64],
        au: &mut [f64],
        ad: &mut [f64],
    ) {
        let m = self.core.num_dcs;
        let base = x as usize * m;
        let master = self.core.masters[x as usize] as usize;
        let g = self.core.profile.g(x);
        let a_bytes = self.core.profile.a(x);
        let high = self.core.is_high[x as usize];
        for (dc, d_in, d_out) in [(a as usize, delta.in_a, delta.out_a), (b as usize, delta.in_b, delta.out_b)] {
            if dc == master || (d_in == 0 && d_out == 0) {
                continue;
            }
            let in_old = self.core.in_cnt[base + dc] as i64;
            let out_old = self.core.out_cnt[base + dc] as i64;
            let in_new = in_old + d_in;
            let tot_old = in_old + out_old;
            let tot_new = in_new + out_old + d_out;
            debug_assert!(in_new >= 0 && tot_new >= 0);
            if high {
                match (in_old > 0, in_new > 0) {
                    (true, false) => {
                        gu[dc] -= g;
                        gd[master] -= g;
                    }
                    (false, true) => {
                        gu[dc] += g;
                        gd[master] += g;
                    }
                    _ => {}
                }
            }
            match (tot_old > 0, tot_new > 0) {
                (true, false) => {
                    au[master] -= a_bytes;
                    ad[dc] -= a_bytes;
                }
                (false, true) => {
                    au[master] += a_bytes;
                    ad[dc] += a_bytes;
                }
                _ => {}
            }
        }
    }

    /// Rebuilds the state from scratch and asserts the incremental
    /// bookkeeping matches — a test/debug aid.
    pub fn check_consistency(&self, env: &CloudEnv) {
        let fresh = HybridState::from_masters(
            self.geo,
            env,
            self.core.masters.clone(),
            self.theta,
            self.core.profile.clone(),
            self.core.num_iterations,
        );
        assert_eq!(self.core.in_cnt, fresh.core.in_cnt, "in_cnt diverged");
        assert_eq!(self.core.out_cnt, fresh.core.out_cnt, "out_cnt diverged");
        assert_eq!(self.core.edges_per_dc, fresh.core.edges_per_dc, "edge balance diverged");
        let m = self.core.num_dcs;
        for d in 0..m as DcId {
            for (ours, theirs, what) in [
                (self.core.gather.up(d), fresh.core.gather.up(d), "gather.up"),
                (self.core.gather.down(d), fresh.core.gather.down(d), "gather.down"),
                (self.core.apply.up(d), fresh.core.apply.up(d), "apply.up"),
                (self.core.apply.down(d), fresh.core.apply.down(d), "apply.down"),
            ] {
                assert!(
                    (ours - theirs).abs() <= 1e-6 * theirs.abs().max(1.0),
                    "{what}[{d}] diverged: incremental {ours} vs fresh {theirs}"
                );
            }
        }
        let mc = fresh.core.movement_cost;
        assert!(
            (self.core.movement_cost - mc).abs() <= 1e-9 * mc.abs().max(1.0),
            "movement cost diverged: {} vs {}",
            self.core.movement_cost,
            mc
        );
    }
}

fn stage_time(up: &[f64], down: &[f64], env: &CloudEnv) -> f64 {
    let mut worst = 0.0f64;
    for d in 0..up.len() {
        let t = (up[d] / env.uplink(d as DcId)).max(down[d] / env.downlink(d as DcId));
        worst = worst.max(t);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup(seed: u64) -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), seed);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed));
        (geo, ec2_eight_regions())
    }

    fn state<'g>(geo: &'g GeoGraph, env: &CloudEnv) -> HybridState<'g> {
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        HybridState::natural(geo, env, theta, profile, 10.0)
    }

    #[test]
    fn natural_state_is_consistent() {
        let (geo, env) = setup(1);
        state(&geo, &env).check_consistency(&env);
    }

    #[test]
    fn evaluate_move_matches_apply_move() {
        let (geo, env) = setup(2);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let to = rng.gen_range(0..geo.num_dcs) as DcId;
            let predicted = s.evaluate_move(&env, v, to);
            s.apply_move(&env, v, to);
            let actual = s.objective(&env);
            assert!(
                (predicted.transfer_time - actual.transfer_time).abs()
                    <= 1e-9 * actual.transfer_time.max(1e-12),
                "time: predicted {} vs actual {}",
                predicted.transfer_time,
                actual.transfer_time
            );
            assert!(
                (predicted.total_cost() - actual.total_cost()).abs()
                    <= 1e-9 * actual.total_cost().max(1e-12),
                "cost: predicted {} vs actual {}",
                predicted.total_cost(),
                actual.total_cost()
            );
        }
        s.check_consistency(&env);
    }

    #[test]
    fn incremental_stays_consistent_over_many_moves() {
        let (geo, env) = setup(3);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(4);
        for step in 0..500 {
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let to = rng.gen_range(0..geo.num_dcs) as DcId;
            s.apply_move(&env, v, to);
            if step % 100 == 99 {
                s.check_consistency(&env);
            }
        }
    }

    #[test]
    fn move_and_return_restores_objective() {
        let (geo, env) = setup(5);
        let mut s = state(&geo, &env);
        let before = s.objective(&env);
        let v = 7;
        let home = s.master(v);
        let to = (home + 1) % geo.num_dcs as DcId;
        s.apply_move(&env, v, to);
        s.apply_move(&env, v, home);
        let after = s.objective(&env);
        assert!((before.transfer_time - after.transfer_time).abs() < 1e-12);
        assert!((before.total_cost() - after.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn noop_move_is_identity() {
        let (geo, env) = setup(6);
        let mut s = state(&geo, &env);
        let before = s.objective(&env);
        let v = 3;
        let home = s.master(v);
        assert_eq!(s.evaluate_move(&env, v, home).transfer_time, before.transfer_time);
        s.apply_move(&env, v, home);
        assert_eq!(s.objective(&env).transfer_time, before.transfer_time);
    }

    #[test]
    fn natural_plan_has_zero_movement_cost() {
        let (geo, env) = setup(7);
        let s = state(&geo, &env);
        assert_eq!(s.objective(&env).movement_cost, 0.0);
    }

    #[test]
    fn moving_master_away_from_home_costs_money() {
        let (geo, env) = setup(8);
        let mut s = state(&geo, &env);
        let v = 11;
        let to = (s.master(v) + 1) % geo.num_dcs as DcId;
        s.apply_move(&env, v, to);
        assert!(s.objective(&env).movement_cost > 0.0);
    }

    #[test]
    fn centralizing_all_masters_removes_runtime_traffic() {
        let (geo, env) = setup(9);
        let mut s = state(&geo, &env);
        for v in 0..geo.num_vertices() as VertexId {
            s.apply_move(&env, v, 0);
        }
        // Everything co-located: no mirrors, no inter-DC traffic.
        let obj = s.objective(&env);
        assert_eq!(obj.transfer_time, 0.0);
        assert_eq!(obj.runtime_cost, 0.0);
        assert!((s.core().replication_factor() - 1.0).abs() < 1e-12);
        s.check_consistency(&env);
    }

    #[test]
    fn hybrid_beats_all_high_on_replication() {
        // The Fig 2 claim: differentiated placement lowers λ versus treating
        // everything as high-degree (vertex-cut-like hashing).
        let (geo, env) = setup(10);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let hybrid = HybridState::from_masters(&geo, &env, geo.locations.clone(), theta, profile.clone(), 10.0);
        let all_high = HybridState::from_masters(&geo, &env, geo.locations.clone(), 1, profile, 10.0);
        assert!(
            hybrid.core().replication_factor() <= all_high.core().replication_factor(),
            "hybrid λ {} vs all-high λ {}",
            hybrid.core().replication_factor(),
            all_high.core().replication_factor()
        );
    }
}
