//! Hybrid-cut placement: the model RLCut trains over (§III-B, §IV-B).
//!
//! The *state* is the master-location vector. Edge placement is fully
//! derived from it (paper §IV-B):
//!
//! * in-edges of a **low-degree** vertex `v` are placed at `v`'s master;
//! * each in-edge `(u, v)` of a **high-degree** `v` is placed at `u`'s
//!   master;
//! * mirrors exist wherever a vertex's incident edges land.
//!
//! [`HybridState::evaluate_all_moves`] projects "move vertex `v` to DC
//! `i`" for **all** `M` destinations onto the objective from a single
//! `O(deg(v))` neighborhood sweep (the [`crate::kernel`] batched path) —
//! move scoring is performed for every sampled agent per training
//! iteration and dominates RLCut's training cost, which is why the paper's
//! straggler mitigation (§V-B) schedules agents by vertex degree.
//! [`HybridState::evaluate_move`] is the single-destination wrapper over
//! the same kernel and agrees with the batched results bit-for-bit.

use geograph::{GeoGraph, GraphDelta};
use geosim::CloudEnv;

use crate::error::PlanError;
use crate::kernel::{self, CntDelta, MoveScratch};
use crate::profile::TrafficProfile;
use crate::state::{DeltaApplyStats, Objective, PlacementDeltaOps, PlacementState};
use crate::{DcId, VertexId};

/// Hybrid-cut placement state over a borrowed [`GeoGraph`].
#[derive(Clone, Debug)]
pub struct HybridState<'g> {
    geo: &'g GeoGraph,
    core: PlacementState,
    theta: usize,
}

impl<'g> HybridState<'g> {
    /// Builds hybrid-cut state from explicit master locations, panicking on
    /// an out-of-range master. Internal callers (trainer, baselines) whose
    /// masters are constructed in-range use this; external plan input goes
    /// through [`Self::try_from_masters`].
    pub fn from_masters(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        masters: Vec<DcId>,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        Self::try_from_masters(geo, env, masters, theta, profile, num_iterations)
            .unwrap_or_else(|e| panic!("invalid master assignment: {e}"))
    }

    /// Builds hybrid-cut state from explicit master locations, returning a
    /// typed [`PlanError`] when any master names a DC outside the
    /// environment — the entry point for plan files and other external
    /// input.
    pub fn try_from_masters(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        masters: Vec<DcId>,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Result<Self, PlanError> {
        assert_eq!(masters.len(), geo.num_vertices());
        assert_eq!(env.num_dcs(), geo.num_dcs);
        if let Some((vertex, &dc)) =
            masters.iter().enumerate().find(|&(_, &d)| d as usize >= env.num_dcs())
        {
            return Err(PlanError::MasterOutOfRange {
                vertex: vertex as VertexId,
                dc,
                num_dcs: env.num_dcs(),
            });
        }
        let is_high = geograph::degree::classify_high_degree(&geo.graph, theta);
        let edge_dc = |u: VertexId, v: VertexId| -> DcId {
            if is_high[v as usize] {
                masters[u as usize]
            } else {
                masters[v as usize]
            }
        };
        let core = PlacementState::from_edge_placement(
            env,
            geo.num_vertices(),
            geo.graph.edges().map(|(u, v)| (u, v, edge_dc(u, v))),
            masters.clone(),
            is_high.clone(),
            &geo.locations,
            &geo.data_sizes,
            profile,
            num_iterations,
        )?;
        Ok(HybridState { geo, core, theta })
    }

    /// The *natural* partitioning: every master at its data's home DC —
    /// the paper's initial state before (re)partitioning (§II-B).
    pub fn natural(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        theta: usize,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        Self::from_masters(geo, env, geo.locations.clone(), theta, profile, num_iterations)
    }

    /// Splits the plan into its graph-independent parts: the owned
    /// [`PlacementState`] and the θ it was classified with. This is the
    /// cross-window carrier — a dynamic-graph driver keeps these between
    /// windows (the borrowed graph may be dropped) and rebinds them to the
    /// next snapshot with [`Self::resume_from_parts`].
    pub fn into_parts(self) -> (PlacementState, usize) {
        (self.core, self.theta)
    }

    /// The inverse of [`Self::into_parts`]: rebinds carried parts to the
    /// snapshot they describe *unchanged* — no per-vertex work. The caller
    /// asserts the parts were built over `geo` (a delta-advanced carrier
    /// goes through [`Self::resume_from_parts`] instead); misuse surfaces
    /// through [`Self::validate_plan`], which drivers use this view for.
    pub fn from_parts(core: PlacementState, theta: usize, geo: &GeoGraph) -> HybridState<'_> {
        assert_eq!(core.num_vertices(), geo.num_vertices());
        HybridState { geo, core, theta }
    }

    /// Advances this plan to the next dynamic-graph window: consumes the
    /// state bound to the previous snapshot and returns the same placement
    /// state rebound to `new_geo`, updated incrementally for exactly the
    /// vertices the delta touches — no count plane, meta record, load
    /// accumulator or profile row of an untouched vertex is rebuilt.
    ///
    /// Masters of existing vertices are preserved (they are the RL state
    /// carried across windows); appended vertices start at their natural
    /// DC, so the tracked Eq 4 movement cost is unchanged. θ stays frozen
    /// at the value the state was built with; existing vertices whose
    /// in-degree crosses θ flip class and have their surviving in-edges
    /// re-placed under the new rule.
    ///
    /// Contract: `new_geo` must be the carried graph plus `delta` (same
    /// cleaned form — checked in debug builds), with locations and data
    /// sizes of existing vertices unchanged, and `new_profile` must cover
    /// `new_geo` and agree with the carried profile on existing vertices.
    /// Dimension mismatches surface as [`PlanError::DeltaMismatch`].
    pub fn apply_delta<'n>(
        self,
        new_geo: &'n GeoGraph,
        env: &CloudEnv,
        delta: &GraphDelta,
        new_profile: &TrafficProfile,
    ) -> Result<(HybridState<'n>, DeltaApplyStats), PlanError> {
        let old_n = self.core.num_vertices();
        debug_assert!(
            new_geo.graph == self.geo.graph.apply_delta(delta),
            "new_geo is not the delta successor of the carried graph"
        );
        debug_assert_eq!(&new_geo.locations[..old_n], &self.geo.locations[..]);
        debug_assert_eq!(&new_geo.data_sizes[..old_n], &self.geo.data_sizes[..]);
        let HybridState { core, theta, .. } = self;
        Self::resume_from_parts(core, theta, new_geo, env, delta, new_profile)
    }

    /// [`Self::apply_delta`] over a placement state extracted with
    /// [`Self::into_parts`] — the form cross-window drivers use, since the
    /// previous window's graph no longer needs to be alive. The flip
    /// repair walks the *new* graph's in-edges (survivors = new in-edges
    /// minus this window's inserts), so the old snapshot is never read.
    pub fn resume_from_parts<'n>(
        core: PlacementState,
        theta: usize,
        new_geo: &'n GeoGraph,
        env: &CloudEnv,
        delta: &GraphDelta,
        new_profile: &TrafficProfile,
    ) -> Result<(HybridState<'n>, DeltaApplyStats), PlanError> {
        let old_n = core.num_vertices();
        let new_n = new_geo.num_vertices();
        assert_eq!(env.num_dcs(), new_geo.num_dcs);
        assert_eq!(env.num_dcs(), core.num_dcs());
        if delta.old_num_vertices() != old_n {
            return Err(PlanError::DeltaMismatch {
                what: "old vertex count",
                expected: delta.old_num_vertices(),
                found: old_n,
            });
        }
        if delta.new_num_vertices() != new_n {
            return Err(PlanError::DeltaMismatch {
                what: "new vertex count",
                expected: delta.new_num_vertices(),
                found: new_n,
            });
        }
        if new_profile.len() != new_n {
            return Err(PlanError::DeltaMismatch {
                what: "profile length",
                expected: new_n,
                found: new_profile.len(),
            });
        }
        debug_assert!(
            core.profile().gather_bytes[..] == new_profile.gather_bytes[..old_n]
                && core.profile().apply_bytes[..] == new_profile.apply_bytes[..old_n],
            "carried traffic profile disagrees with new_profile on existing vertices"
        );

        // Appended vertices: natural masters, class from the new snapshot.
        let new_masters_tail: Vec<DcId> = new_geo.locations[old_n..].to_vec();
        let new_high_tail: Vec<bool> =
            (old_n..new_n).map(|v| new_geo.graph.in_degree(v as VertexId) >= theta).collect();

        // Degree class is keyed on in-degree, so the flip candidates are
        // exactly the delta's sparse in-degree changes (sorted ⇒ `flips`
        // is sorted and binary-searchable).
        let mut flips: Vec<(VertexId, bool)> = Vec::new();
        for &(v, _) in delta.in_degree_changes() {
            if (v as usize) < old_n {
                let high = new_geo.graph.in_degree(v) >= theta;
                if high != core.is_high(v) {
                    flips.push((v, high));
                }
            }
        }

        let master_of = |x: VertexId| -> DcId {
            if (x as usize) < old_n {
                core.master(x)
            } else {
                new_masters_tail[x as usize - old_n]
            }
        };
        let new_high_of = |x: VertexId| -> bool {
            if (x as usize) < old_n {
                match flips.binary_search_by_key(&x, |&(f, _)| f) {
                    Ok(i) => flips[i].1,
                    Err(_) => core.is_high(x),
                }
            } else {
                new_high_tail[x as usize - old_n]
            }
        };

        let mut unplace: Vec<(VertexId, VertexId, DcId)> =
            Vec::with_capacity(delta.deleted().len());
        let mut place: Vec<(VertexId, VertexId, DcId)> = Vec::with_capacity(delta.inserted().len());

        // Deleted edges leave the DC the *old* rule placed them at (both
        // endpoints exist in the base graph by the delta contract).
        for &(u, v) in delta.deleted() {
            let d = if core.is_high(v) { core.master(u) } else { core.master(v) };
            unplace.push((u, v, d));
        }

        // Flip repair: a surviving in-edge (u, f) of a flipped f moves from
        // the old rule's DC to the new rule's. Survivors are the new
        // graph's in-edges minus this window's inserts — deleted in-edges
        // were unplaced above, inserted ones are placed below.
        let mut replaced_edges = 0usize;
        for &(f, now_high) in &flips {
            for &u in new_geo.graph.in_neighbors(f) {
                if delta.inserted().binary_search(&(u, f)).is_ok() {
                    continue;
                }
                // f's old class is the negation of its new one.
                let old_dc = if now_high { core.master(f) } else { core.master(u) };
                let new_dc = if now_high { core.master(u) } else { core.master(f) };
                if old_dc != new_dc {
                    unplace.push((u, f, old_dc));
                    place.push((u, f, new_dc));
                    replaced_edges += 1;
                }
            }
        }

        // Inserted edges are placed under the *new* rule (post-flip
        // classes, appended vertices at their natural masters).
        for &(u, v) in delta.inserted() {
            let d = if new_high_of(v) { master_of(u) } else { master_of(v) };
            place.push((u, v, d));
        }

        // Load re-accumulation set: old-range endpoints of every edge op,
        // plus every flipped vertex (a flip changes gather semantics even
        // when no count moves).
        let mut affected: Vec<VertexId> =
            Vec::with_capacity(2 * (unplace.len() + place.len()) + flips.len());
        for &(u, v, _) in unplace.iter().chain(place.iter()) {
            if (u as usize) < old_n {
                affected.push(u);
            }
            if (v as usize) < old_n {
                affected.push(v);
            }
        }
        for &(f, _) in &flips {
            affected.push(f);
        }
        affected.sort_unstable();
        affected.dedup();

        let stats = DeltaApplyStats {
            new_vertices: new_n - old_n,
            inserted_edges: delta.inserted().len(),
            deleted_edges: delta.deleted().len(),
            class_flips: flips.len(),
            replaced_edges,
            affected_vertices: affected.len(),
        };
        let ops = PlacementDeltaOps {
            new_masters: new_masters_tail,
            new_high: new_high_tail,
            new_gather_bytes: new_profile.gather_bytes[old_n..].to_vec(),
            new_apply_bytes: new_profile.apply_bytes[old_n..].to_vec(),
            flips,
            unplace,
            place,
            affected,
        };
        let mut core = core;
        core.apply_delta(&ops);
        Ok((HybridState { geo: new_geo, core, theta }, stats))
    }

    /// The underlying placement state (counts, loads, metrics).
    pub fn core(&self) -> &PlacementState {
        &self.core
    }

    /// Heap bytes of the owned placement state (the borrowed graph is the
    /// caller's to account).
    pub fn heap_bytes(&self) -> usize {
        self.core.heap_bytes()
    }

    /// The graph this plan partitions.
    pub fn geo(&self) -> &'g GeoGraph {
        self.geo
    }

    /// The hybrid-cut degree threshold θ.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Current master of `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> DcId {
        self.core.master(v)
    }

    /// Current objective (Eq 1 + Eq 4/5).
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        self.core.objective(env)
    }

    /// Overwrites the accumulated Eq 4 movement cost — see
    /// [`PlacementState::override_movement_cost`]. Used by checkpoint
    /// restore, where the cost accumulated incrementally before the crash
    /// cannot be recomputed from the masters alone.
    pub fn override_movement_cost(&mut self, cost: f64) {
        self.core.override_movement_cost(cost);
    }

    /// Evaluates moving `v`'s master to **every** DC in one neighborhood
    /// sweep, without mutating the state. The returned slice lives in
    /// `scratch`, indexed by destination DC; the slot of the current
    /// master holds the unchanged current objective.
    ///
    /// Cost: one `O(deg(v))` sweep + `O(deg(v) · M + M²)` projection —
    /// versus `M` independent [`Self::evaluate_move`] calls, which it
    /// matches bit-for-bit.
    pub fn evaluate_all_moves<'s>(
        &self,
        env: &CloudEnv,
        v: VertexId,
        scratch: &'s mut MoveScratch,
    ) -> &'s [Objective] {
        self.collect_deltas_into(v, scratch);
        self.core.evaluate_all_moves(env, v, scratch);
        // The kernel reports the current plan's movement cost; patch in the
        // per-destination Eq 4 delta for every actual move.
        let a = self.core.master(v);
        let loc = self.geo.locations[v as usize];
        let size = self.geo.data_sizes[v as usize];
        let base = self.core.movement_cost - geosim::cost::vertex_move_cost(env, loc, a, size);
        for (d, obj) in scratch.objectives_mut().iter_mut().enumerate() {
            if d != a as usize {
                obj.movement_cost =
                    base + geosim::cost::vertex_move_cost(env, loc, d as DcId, size);
            }
        }
        scratch.objectives()
    }

    /// Evaluates moving `v`'s master to `to` without mutating the state,
    /// using the caller's scratch arena. Cost: `O(deg(v) + M)`.
    /// Bit-identical to slot `to` of [`Self::evaluate_all_moves`].
    pub fn evaluate_move_with(
        &self,
        env: &CloudEnv,
        v: VertexId,
        to: DcId,
        scratch: &mut MoveScratch,
    ) -> Objective {
        let a = self.core.master(v);
        if a == to {
            return self.core.objective(env);
        }
        self.collect_deltas_into(v, scratch);
        let mut obj = self.core.evaluate_move_to(env, v, to, scratch);
        let loc = self.geo.locations[v as usize];
        let size = self.geo.data_sizes[v as usize];
        let base = self.core.movement_cost - geosim::cost::vertex_move_cost(env, loc, a, size);
        obj.movement_cost = base + geosim::cost::vertex_move_cost(env, loc, to, size);
        obj
    }

    /// [`Self::evaluate_move_with`] over this thread's shared scratch —
    /// kept for callers that don't manage a per-worker arena.
    pub fn evaluate_move(&self, env: &CloudEnv, v: VertexId, to: DcId) -> Objective {
        kernel::with_scratch(|scratch| self.evaluate_move_with(env, v, to, scratch))
    }

    /// Moves `v`'s master to `to`, updating counts, loads, balance and cost
    /// incrementally through the caller's scratch arena. Cost:
    /// `O(deg(v) · M)` (moves are far rarer than evaluations — only
    /// accepted migrations pay this).
    pub fn apply_move_with(
        &mut self,
        env: &CloudEnv,
        v: VertexId,
        to: DcId,
        scratch: &mut MoveScratch,
    ) {
        let a = self.core.master(v);
        if a == to {
            return;
        }
        let m = self.core.num_dcs;
        self.collect_deltas_into(v, scratch);
        let self_delta = scratch.self_delta;

        // Remove the old contributions of every affected vertex.
        self.core.remove_vertex_loads(v);
        for &(x, _) in &scratch.neighbors {
            self.core.remove_vertex_loads(x);
        }

        // Mutate the count rows (lane 0 = in, lane 1 = out of the
        // interleaved plane pair), keeping the per-vertex occupancy mask
        // exact: the kernel trusts a clear bit to mean an all-zero cell.
        let apply_delta = |counts: &mut Vec<u32>,
                           meta: &mut Vec<crate::state::VertexMeta>,
                           row: usize,
                           dc: usize,
                           lane: usize,
                           delta: i64| {
            if delta != 0 {
                let idx = (row * m + dc) * 2;
                let cell = &mut counts[idx + lane];
                *cell = (*cell as i64 + delta) as u32;
                if (counts[idx] | counts[idx + 1]) == 0 {
                    meta[row].nnz &= !(1u64 << dc);
                } else {
                    meta[row].nnz |= 1u64 << dc;
                }
            }
        };
        let core = &mut self.core;
        apply_delta(&mut core.counts, &mut core.meta, v as usize, a as usize, 0, self_delta.in_a);
        apply_delta(&mut core.counts, &mut core.meta, v as usize, to as usize, 0, self_delta.in_b);
        apply_delta(&mut core.counts, &mut core.meta, v as usize, a as usize, 1, self_delta.out_a);
        apply_delta(&mut core.counts, &mut core.meta, v as usize, to as usize, 1, self_delta.out_b);
        for &(x, d) in &scratch.neighbors {
            apply_delta(&mut core.counts, &mut core.meta, x as usize, a as usize, 0, d.in_a);
            apply_delta(&mut core.counts, &mut core.meta, x as usize, to as usize, 0, d.in_b);
            apply_delta(&mut core.counts, &mut core.meta, x as usize, a as usize, 1, d.out_a);
            apply_delta(&mut core.counts, &mut core.meta, x as usize, to as usize, 1, d.out_b);
        }

        // Moved edges change the per-DC balance. Every edge that moved is
        // one of v's in-edges (low v) or an out-edge to a high destination
        // (or a self-loop); `-self_delta.out_a - ...` counts them exactly
        // once via the out side for out-moves plus the in side for in-moves
        // of *other* sources. Count directly instead:
        let moved_edges = (-self_delta.in_a).max(0) as u64
            + scratch.neighbors.iter().map(|&(_, d)| (-d.in_a).max(0) as u64).sum::<u64>();
        self.core.edges_per_dc[a as usize] -= moved_edges;
        self.core.edges_per_dc[to as usize] += moved_edges;

        // Master move + movement cost.
        self.core.movement_cost += geosim::cost::vertex_move_cost(
            env,
            self.geo.locations[v as usize],
            to,
            self.geo.data_sizes[v as usize],
        ) - geosim::cost::vertex_move_cost(
            env,
            self.geo.locations[v as usize],
            a,
            self.geo.data_sizes[v as usize],
        );
        self.core.masters[v as usize] = to;
        self.core.meta[v as usize].master = to;

        // Re-add contributions under the new placement.
        self.core.add_vertex_loads(v);
        for &(x, _) in &scratch.neighbors {
            self.core.add_vertex_loads(x);
        }
    }

    /// [`Self::apply_move_with`] over this thread's shared scratch.
    pub fn apply_move(&mut self, env: &CloudEnv, v: VertexId, to: DcId) {
        kernel::with_scratch(|scratch| self.apply_move_with(env, v, to, scratch))
    }

    /// Stages into `scratch` the in/out count deltas a move of `v` away
    /// from its current master causes, for `v` itself and for each
    /// affected neighbor. Self-loops fold into the self delta. The deltas
    /// are destination-independent (any `b ≠ a` receives the same counts
    /// DC `a` loses), which is what makes batched evaluation possible.
    fn collect_deltas_into(&self, v: VertexId, scratch: &mut MoveScratch) {
        scratch.begin_stage();
        let mut self_delta = CntDelta::default();
        if !self.core.is_high[v as usize] {
            // All in-edges of v are placed at v's master and move with it.
            for &u in self.geo.graph.in_neighbors(v) {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
                if u == v {
                    self_delta.out_a -= 1;
                    self_delta.out_b += 1;
                } else {
                    scratch
                        .push_neighbor(u, CntDelta { out_a: -1, out_b: 1, ..CntDelta::default() });
                }
            }
        }
        // Out-edges (v, w) with high-degree w are placed at v's master and
        // move with it. (A self-loop on a high v is covered here.)
        for &w in self.geo.graph.out_neighbors(v) {
            if !self.core.is_high[w as usize] {
                continue;
            }
            self_delta.out_a -= 1;
            self_delta.out_b += 1;
            if w == v {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
            } else {
                scratch.push_neighbor(w, CntDelta { in_a: -1, in_b: 1, ..CntDelta::default() });
            }
        }
        scratch.self_delta = self_delta;
        scratch.seal();
    }

    /// Rebuilds the state from scratch and checks the incremental
    /// bookkeeping matches, returning a typed error naming the first
    /// divergence instead of panicking.
    pub fn validate_plan(&self, env: &CloudEnv) -> Result<(), PlanError> {
        let fresh = HybridState::from_masters(
            self.geo,
            env,
            self.core.masters.clone(),
            self.theta,
            self.core.profile.clone(),
            self.core.num_iterations,
        );
        let m = self.core.num_dcs;
        {
            let ours = &self.core.counts;
            let theirs = &fresh.core.counts;
            if let Some(i) = (0..ours.len()).find(|&i| ours[i] != theirs[i]) {
                let cell = i / 2;
                return Err(PlanError::CountDrift {
                    array: if i % 2 == 0 { "in_cnt" } else { "out_cnt" },
                    vertex: (cell / m) as VertexId,
                    dc: (cell % m) as DcId,
                    incremental: ours[i],
                    fresh: theirs[i],
                });
            }
        }
        for (v, (ours, fresh)) in self.core.meta.iter().zip(&fresh.core.meta).enumerate() {
            if ours.nnz != fresh.nnz {
                return Err(PlanError::MetaDrift {
                    field: "nnz",
                    vertex: v as VertexId,
                    incremental: ours.nnz,
                    fresh: fresh.nnz,
                });
            }
            if ours.master != self.core.masters[v] {
                return Err(PlanError::MetaDrift {
                    field: "master",
                    vertex: v as VertexId,
                    incremental: ours.master as u64,
                    fresh: self.core.masters[v] as u64,
                });
            }
        }
        for d in 0..m {
            if self.core.edges_per_dc[d] != fresh.core.edges_per_dc[d] {
                return Err(PlanError::EdgeBalanceDrift {
                    dc: d as DcId,
                    incremental: self.core.edges_per_dc[d],
                    fresh: fresh.core.edges_per_dc[d],
                });
            }
        }
        for d in 0..m as DcId {
            for (ours, theirs, stage) in [
                (self.core.gather.up(d), fresh.core.gather.up(d), "gather.up"),
                (self.core.gather.down(d), fresh.core.gather.down(d), "gather.down"),
                (self.core.apply.up(d), fresh.core.apply.up(d), "apply.up"),
                (self.core.apply.down(d), fresh.core.apply.down(d), "apply.down"),
            ] {
                if (ours - theirs).abs() > 1e-6 * theirs.abs().max(1.0) {
                    return Err(PlanError::LoadDrift {
                        stage,
                        dc: d,
                        incremental: ours,
                        fresh: theirs,
                    });
                }
            }
        }
        let mc = fresh.core.movement_cost;
        if (self.core.movement_cost - mc).abs() > 1e-9 * mc.abs().max(1.0) {
            return Err(PlanError::MovementCostDrift {
                incremental: self.core.movement_cost,
                fresh: mc,
            });
        }

        // The batched kernel must agree with per-destination evaluation
        // bit-for-bit on a deterministic sample of vertices.
        let n = self.core.num_vertices();
        let mut batch = MoveScratch::new();
        let mut single = MoveScratch::new();
        for v in (0..n).step_by((n / 16).max(1)) {
            let v = v as VertexId;
            self.evaluate_all_moves(env, v, &mut batch);
            for d in 0..m as DcId {
                let b = batch.objectives()[d as usize];
                let s = self.evaluate_move_with(env, v, d, &mut single);
                if b.transfer_time.to_bits() != s.transfer_time.to_bits()
                    || b.movement_cost.to_bits() != s.movement_cost.to_bits()
                    || b.runtime_cost.to_bits() != s.runtime_cost.to_bits()
                {
                    return Err(PlanError::KernelDivergence { vertex: v, dc: d });
                }
            }
        }
        Ok(())
    }

    /// Panicking wrapper over [`Self::validate_plan`] — a test/debug aid.
    pub fn check_consistency(&self, env: &CloudEnv) {
        if let Err(e) = self.validate_plan(env) {
            panic!("plan consistency check failed: {e}");
        }
    }

    /// Debug-build-only consistency check for internal hot paths: free in
    /// release builds, full [`Self::validate_plan`] under `cfg(debug_assertions)`.
    #[inline]
    pub fn debug_validate(&self, env: &CloudEnv) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.validate_plan(env) {
            panic!("plan consistency check failed: {e}");
        }
        #[cfg(not(debug_assertions))]
        let _ = env;
    }

    /// Checks that the plan touches no dark DC: no master and no mirror on
    /// any DC with `dead[dc] == true`.
    pub fn validate_against_faults(&self, dead: &[bool]) -> Result<(), PlanError> {
        assert_eq!(dead.len(), self.core.num_dcs);
        let dead_mask =
            dead.iter().enumerate().fold(0u64, |m, (d, &x)| if x { m | (1u64 << d) } else { m });
        if dead_mask == 0 {
            return Ok(());
        }
        for v in 0..self.core.num_vertices() as VertexId {
            let master = self.core.master(v);
            if dead[master as usize] {
                return Err(PlanError::MasterOnDeadDc { vertex: v, dc: master });
            }
            let on_dead = self.core.mirror_mask(v) & dead_mask;
            if on_dead != 0 {
                return Err(PlanError::MirrorOnDeadDc {
                    vertex: v,
                    dc: on_dead.trailing_zeros() as DcId,
                });
            }
        }
        Ok(())
    }

    /// Re-places every master resident on a dark DC onto the best live
    /// destination, scored by the batched move-evaluation kernel
    /// (transfer time first, then total monetary cost, then DC id — fully
    /// deterministic).
    ///
    /// In the hybrid-cut model edge placement and mirrors are *derived*
    /// from the master vector (§IV-B), so once no master lives on a dead
    /// DC, no edge and hence no mirror remains there either — one pass
    /// over the masters evacuates the whole plan, which
    /// [`Self::validate_against_faults`] re-checks before returning.
    ///
    /// `env` should be the *current* (possibly degraded) environment so
    /// evacuation targets are scored under the bandwidths that actually
    /// hold during the fault.
    pub fn evacuate(
        &mut self,
        env: &CloudEnv,
        dead: &[bool],
        scratch: &mut MoveScratch,
    ) -> Result<EvacuationReport, PlanError> {
        assert_eq!(dead.len(), self.core.num_dcs);
        if dead.iter().all(|&d| d) {
            return Err(PlanError::NoLiveDc);
        }
        let mut moved = 0usize;
        for v in 0..self.core.num_vertices() as VertexId {
            let from = self.core.master(v);
            if !dead[from as usize] {
                continue;
            }
            let objs = self.evaluate_all_moves(env, v, scratch);
            let mut best: Option<(DcId, Objective)> = None;
            for (d, obj) in objs.iter().enumerate() {
                if dead[d] {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, b)) => {
                        obj.transfer_time < b.transfer_time
                            || (obj.transfer_time == b.transfer_time
                                && obj.total_cost() < b.total_cost())
                    }
                };
                if better {
                    best = Some((d as DcId, *obj));
                }
            }
            let (to, _) = best.expect("at least one live DC exists");
            self.apply_move_with(env, v, to, scratch);
            moved += 1;
        }
        self.validate_against_faults(dead)?;
        Ok(EvacuationReport { vertices_moved: moved, objective: self.objective(env) })
    }
}

/// What [`HybridState::evacuate`] did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvacuationReport {
    /// Number of masters re-placed off dark DCs.
    pub vertices_moved: usize,
    /// The plan's objective after evacuation, under the faulted environment.
    pub objective: Objective,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup(seed: u64) -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), seed);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed));
        (geo, ec2_eight_regions())
    }

    fn state<'g>(geo: &'g GeoGraph, env: &CloudEnv) -> HybridState<'g> {
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        HybridState::natural(geo, env, theta, profile, 10.0)
    }

    #[test]
    fn natural_state_is_consistent() {
        let (geo, env) = setup(1);
        state(&geo, &env).check_consistency(&env);
    }

    #[test]
    fn evaluate_move_matches_apply_move() {
        let (geo, env) = setup(2);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let to = rng.gen_range(0..geo.num_dcs) as DcId;
            let predicted = s.evaluate_move(&env, v, to);
            s.apply_move(&env, v, to);
            let actual = s.objective(&env);
            assert!(
                (predicted.transfer_time - actual.transfer_time).abs()
                    <= 1e-9 * actual.transfer_time.max(1e-12),
                "time: predicted {} vs actual {}",
                predicted.transfer_time,
                actual.transfer_time
            );
            assert!(
                (predicted.total_cost() - actual.total_cost()).abs()
                    <= 1e-9 * actual.total_cost().max(1e-12),
                "cost: predicted {} vs actual {}",
                predicted.total_cost(),
                actual.total_cost()
            );
        }
        s.check_consistency(&env);
    }

    #[test]
    fn incremental_stays_consistent_over_many_moves() {
        let (geo, env) = setup(3);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(4);
        for step in 0..500 {
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let to = rng.gen_range(0..geo.num_dcs) as DcId;
            s.apply_move(&env, v, to);
            if step % 100 == 99 {
                s.check_consistency(&env);
            }
        }
    }

    #[test]
    fn move_and_return_restores_objective() {
        let (geo, env) = setup(5);
        let mut s = state(&geo, &env);
        let before = s.objective(&env);
        let v = 7;
        let home = s.master(v);
        let to = (home + 1) % geo.num_dcs as DcId;
        s.apply_move(&env, v, to);
        s.apply_move(&env, v, home);
        let after = s.objective(&env);
        assert!((before.transfer_time - after.transfer_time).abs() < 1e-12);
        assert!((before.total_cost() - after.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn noop_move_is_identity() {
        let (geo, env) = setup(6);
        let mut s = state(&geo, &env);
        let before = s.objective(&env);
        let v = 3;
        let home = s.master(v);
        assert_eq!(s.evaluate_move(&env, v, home).transfer_time, before.transfer_time);
        s.apply_move(&env, v, home);
        assert_eq!(s.objective(&env).transfer_time, before.transfer_time);
    }

    #[test]
    fn natural_plan_has_zero_movement_cost() {
        let (geo, env) = setup(7);
        let s = state(&geo, &env);
        assert_eq!(s.objective(&env).movement_cost, 0.0);
    }

    #[test]
    fn moving_master_away_from_home_costs_money() {
        let (geo, env) = setup(8);
        let mut s = state(&geo, &env);
        let v = 11;
        let to = (s.master(v) + 1) % geo.num_dcs as DcId;
        s.apply_move(&env, v, to);
        assert!(s.objective(&env).movement_cost > 0.0);
    }

    #[test]
    fn centralizing_all_masters_removes_runtime_traffic() {
        let (geo, env) = setup(9);
        let mut s = state(&geo, &env);
        for v in 0..geo.num_vertices() as VertexId {
            s.apply_move(&env, v, 0);
        }
        // Everything co-located: no mirrors, no inter-DC traffic.
        let obj = s.objective(&env);
        assert_eq!(obj.transfer_time, 0.0);
        assert_eq!(obj.runtime_cost, 0.0);
        assert!((s.core().replication_factor() - 1.0).abs() < 1e-12);
        s.check_consistency(&env);
    }

    #[test]
    fn batched_matches_sequential_bitwise() {
        let (geo, env) = setup(11);
        let mut s = state(&geo, &env);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut batch = MoveScratch::new();
        let mut single = MoveScratch::new();
        for step in 0..40 {
            // Interleave applied moves so the comparison covers evolving,
            // non-natural states too.
            let mv = rng.gen_range(0..geo.num_vertices()) as VertexId;
            s.apply_move(&env, mv, rng.gen_range(0..geo.num_dcs) as DcId);
            let v = rng.gen_range(0..geo.num_vertices()) as VertexId;
            let objs: Vec<_> = s.evaluate_all_moves(&env, v, &mut batch).to_vec();
            for (d, b) in objs.iter().enumerate() {
                let sq = s.evaluate_move_with(&env, v, d as DcId, &mut single);
                assert_eq!(
                    (
                        b.transfer_time.to_bits(),
                        b.movement_cost.to_bits(),
                        b.runtime_cost.to_bits()
                    ),
                    (
                        sq.transfer_time.to_bits(),
                        sq.movement_cost.to_bits(),
                        sq.runtime_cost.to_bits()
                    ),
                    "step {step}: v={v} d={d}: {b:?} vs {sq:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reused_across_env_widths_matches_fresh_bitwise() {
        // One shared MoveScratch cycled M=8 → M=4 → M=8: lanes seeded by
        // the wide environment must never leak into objectives computed
        // after the shrink-then-grow round-trip.
        let (geo8, env8) = setup(21);
        let g4 = rmat(&RmatConfig::social(512, 4096), 22);
        let geo4 = GeoGraph::from_graph(g4, &LocalityConfig::uniform(4, 22));
        let env4 = CloudEnv::new(env8.dcs()[..4].to_vec());

        let s8 = state(&geo8, &env8);
        let theta4 = geograph::degree::suggest_theta(&geo4.graph, 0.05);
        let profile4 = TrafficProfile::uniform(geo4.num_vertices(), 8.0);
        let s4 = HybridState::natural(&geo4, &env4, theta4, profile4, 10.0);

        let mut shared = MoveScratch::new();
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..25 {
            let v8 = rng.gen_range(0..geo8.num_vertices()) as VertexId;
            let v4 = rng.gen_range(0..geo4.num_vertices()) as VertexId;
            s8.evaluate_all_moves(&env8, v8, &mut shared);
            s4.evaluate_all_moves(&env4, v4, &mut shared);
            let reused: Vec<Objective> = s8.evaluate_all_moves(&env8, v8, &mut shared).to_vec();
            let mut fresh = MoveScratch::new();
            let clean = s8.evaluate_all_moves(&env8, v8, &mut fresh);
            for (d, (r, c)) in reused.iter().zip(clean).enumerate() {
                assert_eq!(
                    (
                        r.transfer_time.to_bits(),
                        r.movement_cost.to_bits(),
                        r.runtime_cost.to_bits()
                    ),
                    (
                        c.transfer_time.to_bits(),
                        c.movement_cost.to_bits(),
                        c.runtime_cost.to_bits()
                    ),
                    "v={v8} d={d}: reused {r:?} vs fresh {c:?}"
                );
            }
        }
    }

    #[test]
    fn validate_plan_accepts_fresh_state() {
        let (geo, env) = setup(20);
        assert_eq!(state(&geo, &env).validate_plan(&env), Ok(()));
    }

    #[test]
    fn validate_plan_reports_count_drift() {
        let (geo, env) = setup(21);
        let mut s = state(&geo, &env);
        // Corrupt one count cell (an even index = an in-count lane);
        // validation must name the drift.
        s.core.counts[10] += 1;
        match s.validate_plan(&env) {
            Err(PlanError::CountDrift { array: "in_cnt", .. }) => {}
            other => panic!("expected in_cnt drift, got {other:?}"),
        }
    }

    #[test]
    fn try_from_masters_rejects_out_of_range_master() {
        let (geo, env) = setup(26);
        let mut masters = geo.locations.clone();
        masters[3] = 42;
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        match HybridState::try_from_masters(&geo, &env, masters, 16, profile, 10.0) {
            Err(PlanError::MasterOutOfRange { vertex: 3, dc: 42, num_dcs: 8 }) => {}
            other => panic!("expected master-out-of-range, got {other:?}"),
        }
    }

    #[test]
    fn evacuate_clears_dead_dc() {
        let (geo, env) = setup(22);
        let mut s = state(&geo, &env);
        let mut dead = vec![false; 8];
        dead[2] = true;
        let before_on_dead =
            (0..geo.num_vertices() as VertexId).filter(|&v| s.master(v) == 2).count();
        assert!(before_on_dead > 0, "seed should place masters on DC 2");
        let mut scratch = MoveScratch::new();
        let report = s.evacuate(&env, &dead, &mut scratch).unwrap();
        assert_eq!(report.vertices_moved, before_on_dead);
        assert_eq!(s.validate_against_faults(&dead), Ok(()));
        s.check_consistency(&env);
    }

    #[test]
    fn evacuate_is_deterministic() {
        let (geo, env) = setup(23);
        let mut dead = vec![false; 8];
        dead[0] = true;
        dead[5] = true;
        let mut a = state(&geo, &env);
        let mut b = state(&geo, &env);
        let mut scratch = MoveScratch::new();
        a.evacuate(&env, &dead, &mut scratch).unwrap();
        b.evacuate(&env, &dead, &mut scratch).unwrap();
        assert_eq!(a.core().masters(), b.core().masters());
    }

    #[test]
    fn evacuate_with_no_live_dc_is_an_error() {
        let (geo, env) = setup(24);
        let mut s = state(&geo, &env);
        let mut scratch = MoveScratch::new();
        assert_eq!(s.evacuate(&env, &[true; 8], &mut scratch), Err(PlanError::NoLiveDc));
    }

    #[test]
    fn validate_against_faults_detects_resident_master() {
        let (geo, env) = setup(25);
        let s = state(&geo, &env);
        let dc = s.master(0);
        let mut dead = vec![false; 8];
        dead[dc as usize] = true;
        match s.validate_against_faults(&dead) {
            Err(PlanError::MasterOnDeadDc { .. }) => {}
            other => panic!("expected master-on-dead-DC, got {other:?}"),
        }
    }

    mod delta {
        use super::*;
        use geograph::dynamic::{EdgeEvent, EventKind};
        use geograph::{Graph, GraphDelta};

        /// Degree-independent per-vertex data sizes: windows must not
        /// change an existing vertex's `d_v`, so sizes are keyed on id.
        fn sizes(n: usize) -> Vec<u64> {
            (0..n as u64).map(|v| 64 + 8 * v).collect()
        }

        fn locs(n: usize, m: usize) -> Vec<DcId> {
            (0..n).map(|v| ((v * 7 + 3) % m) as DcId).collect()
        }

        fn geo_at(g: Graph, m: usize) -> GeoGraph {
            let n = g.num_vertices();
            GeoGraph::new(g, locs(n, m), sizes(n), m)
        }

        /// Masters that differ from natural for every 5th vertex, so the
        /// carried state has nonzero movement cost and real mirrors.
        fn scrambled_masters(geo: &GeoGraph) -> Vec<DcId> {
            geo.locations
                .iter()
                .enumerate()
                .map(|(v, &l)| if v % 5 == 0 { (l + 1) % geo.num_dcs as DcId } else { l })
                .collect()
        }

        fn ev(src: u32, dst: u32, ts: u64, kind: EventKind) -> EdgeEvent {
            EdgeEvent { src, dst, timestamp_ms: ts, kind }
        }

        /// Asserts the integer state of two plans over the same graph is
        /// bit-for-bit identical, and that the incremental one passes the
        /// full rebuild cross-check (loads/cost to fp tolerance, kernel
        /// bitwise).
        fn assert_state_matches_fresh(env: &CloudEnv, inc: &HybridState<'_>) {
            let fresh = HybridState::from_masters(
                inc.geo,
                env,
                inc.core.masters.clone(),
                inc.theta,
                inc.core.profile.clone(),
                inc.core.num_iterations,
            );
            assert_eq!(inc.core.counts, fresh.core.counts, "count planes drifted");
            assert_eq!(inc.core.meta, fresh.core.meta, "packed meta drifted");
            assert_eq!(inc.core.is_high, fresh.core.is_high, "degree classes drifted");
            assert_eq!(inc.core.edges_per_dc, fresh.core.edges_per_dc, "edge balance drifted");
            assert_eq!(inc.validate_plan(env), Ok(()));
        }

        #[test]
        fn apply_delta_matches_rebuild_with_flips_and_deletes() {
            let env = ec2_eight_regions();
            let m = env.num_dcs();
            let theta = 5usize;
            let g0 = geograph::generators::erdos_renyi(200, 800, 31);

            // Engineer both flip directions: push one vertex across θ from
            // below, and drop one high vertex below θ by deleting in-edges.
            let up = (0..200u32)
                .find(|&v| g0.in_degree(v) == theta - 2)
                .expect("seed yields a vertex 2 below theta");
            let down = (0..200u32)
                .find(|&v| v != up && g0.in_degree(v) == theta)
                .expect("seed yields a vertex exactly at theta");
            let mut events = vec![
                // Three new in-edges for `up`, two from brand-new vertices.
                ev(200, up, 0, EventKind::Insert),
                ev(201, up, 1, EventKind::Insert),
                ev((up + 1) % 200, up, 2, EventKind::Insert),
                // New vertex with no surviving edge (arrival still counts).
                ev(205, 0, 3, EventKind::Insert),
                ev(205, 0, 4, EventKind::Delete),
            ];
            let dsrc = g0.in_neighbors(down)[0];
            events.push(ev(dsrc, down, 5, EventKind::Delete));
            // A few more arbitrary deletes of existing edges.
            for (i, (u, v)) in g0.edges().step_by(97).take(5).enumerate() {
                events.push(ev(u, v, 6 + i as u64, EventKind::Delete));
            }

            let delta = GraphDelta::from_events(&g0, &events);
            assert!(!delta.deleted().is_empty() && !delta.inserted().is_empty());

            let geo0 = geo_at(g0.clone(), m);
            let profile0 = TrafficProfile::uniform(200, 8.0);
            let s0 = HybridState::from_masters(
                &geo0,
                &env,
                scrambled_masters(&geo0),
                theta,
                profile0,
                10.0,
            );
            let masters_before = s0.core.masters.clone();
            let movement_before = s0.core.movement_cost;

            let g1 = g0.apply_delta(&delta);
            let geo1 = geo_at(g1, m);
            let profile1 = TrafficProfile::uniform(geo1.num_vertices(), 8.0);
            let (s1, stats) = s0.apply_delta(&geo1, &env, &delta, &profile1).unwrap();

            assert!(stats.class_flips >= 2, "expected both flip directions, got {stats:?}");
            assert_eq!(stats.new_vertices, geo1.num_vertices() - 200);
            // Existing masters are carried, new ones are natural.
            assert_eq!(&s1.core.masters[..200], &masters_before[..]);
            assert_eq!(&s1.core.masters[200..], &geo1.locations[200..]);
            // Nobody moved => tracked Eq 4 cost is untouched (bitwise).
            assert_eq!(s1.core.movement_cost.to_bits(), movement_before.to_bits());
            assert_state_matches_fresh(&env, &s1);
        }

        #[test]
        fn empty_delta_is_bitwise_identity() {
            let env = ec2_eight_regions();
            let g0 = geograph::generators::erdos_renyi(150, 600, 7);
            let delta = GraphDelta::from_events(&g0, &[]);
            let geo0 = geo_at(g0.clone(), env.num_dcs());
            let geo1 = geo_at(g0, env.num_dcs());
            let profile = TrafficProfile::uniform(150, 8.0);
            let s0 = HybridState::from_masters(
                &geo0,
                &env,
                scrambled_masters(&geo0),
                4,
                profile.clone(),
                10.0,
            );
            let before = s0.objective(&env);
            let counts_before = s0.core.counts.clone();
            let (s1, stats) = s0.apply_delta(&geo1, &env, &delta, &profile).unwrap();
            assert_eq!(stats, crate::DeltaApplyStats::default());
            assert_eq!(stats.work_items(), 0);
            assert_eq!(s1.core.counts, counts_before);
            let after = s1.objective(&env);
            assert_eq!(before.transfer_time.to_bits(), after.transfer_time.to_bits());
            assert_eq!(before.movement_cost.to_bits(), after.movement_cost.to_bits());
            assert_eq!(before.runtime_cost.to_bits(), after.runtime_cost.to_bits());
        }

        #[test]
        fn chained_windows_match_rebuild() {
            let env = ec2_eight_regions();
            let m = env.num_dcs();
            let theta = 4usize;
            let mut g = geograph::generators::erdos_renyi(120, 500, 11);
            let geo = geo_at(g.clone(), m);
            let mut parts = {
                let s = HybridState::from_masters(
                    &geo,
                    &env,
                    scrambled_masters(&geo),
                    theta,
                    TrafficProfile::uniform(120, 8.0),
                    10.0,
                );
                s.into_parts()
            };
            let mut rng = SmallRng::seed_from_u64(13);
            for w in 0..4u64 {
                let n = g.num_vertices() as u32;
                let mut events = Vec::new();
                for i in 0..20 {
                    let grow = rng.gen_bool(0.2);
                    let src = if grow { n + rng.gen_range(0..4u32) } else { rng.gen_range(0..n) };
                    events.push(ev(src, rng.gen_range(0..n), 100 * w + i, EventKind::Insert));
                }
                let existing: Vec<_> = g.edges().step_by(37).take(6).collect();
                for (i, (u, v)) in existing.into_iter().enumerate() {
                    events.push(ev(u, v, 100 * w + 50 + i as u64, EventKind::Delete));
                }
                let delta = GraphDelta::from_events(&g, &events);
                g = g.apply_delta(&delta);
                let geo_w = geo_at(g.clone(), m);
                let profile_w = TrafficProfile::uniform(geo_w.num_vertices(), 8.0);
                let (core, th) = parts;
                let (s, _) =
                    HybridState::resume_from_parts(core, th, &geo_w, &env, &delta, &profile_w)
                        .unwrap();
                assert_state_matches_fresh(&env, &s);
                parts = s.into_parts();
            }
        }

        #[test]
        fn delta_work_is_proportional_to_the_batch() {
            let env = ec2_eight_regions();
            let m = env.num_dcs();
            let g0 = geograph::generators::erdos_renyi(2000, 8000, 5);
            let geo0 = geo_at(g0.clone(), m);
            let s0 = HybridState::from_masters(
                &geo0,
                &env,
                scrambled_masters(&geo0),
                6,
                TrafficProfile::uniform(2000, 8.0),
                10.0,
            );
            let (u0, v0) = g0.edges().next().unwrap();
            let events = vec![
                ev(2000, 17, 0, EventKind::Insert),
                ev(900, 901, 1, EventKind::Insert),
                ev(u0, v0, 2, EventKind::Delete),
            ];
            let delta = GraphDelta::from_events(&g0, &events);
            let g1 = g0.apply_delta(&delta);
            let geo1 = geo_at(g1, m);
            let profile1 = TrafficProfile::uniform(geo1.num_vertices(), 8.0);
            let (_, stats) = s0.apply_delta(&geo1, &env, &delta, &profile1).unwrap();
            // 3 edge ops + 1 new vertex + possible class-flip repairs on
            // their endpoints: two orders of magnitude below n = 2000.
            assert!(stats.work_items() < 64, "delta work should track the batch, got {stats:?}");
        }

        #[test]
        fn dimension_mismatches_are_typed_errors() {
            let env = ec2_eight_regions();
            let m = env.num_dcs();
            let g_small = geograph::generators::erdos_renyi(40, 120, 3);
            let g_big = geograph::generators::erdos_renyi(60, 200, 3);
            let delta = GraphDelta::from_events(&g_small, &[]);
            let geo_small = geo_at(g_small, m);
            let geo_big = geo_at(g_big, m);
            let profile_small = TrafficProfile::uniform(40, 8.0);
            let profile_big = TrafficProfile::uniform(60, 8.0);

            // State over 60 vertices, delta against a 40-vertex base.
            let (core, th) = HybridState::from_masters(
                &geo_big,
                &env,
                geo_big.locations.clone(),
                4,
                profile_big.clone(),
                10.0,
            )
            .into_parts();
            match HybridState::resume_from_parts(core, th, &geo_small, &env, &delta, &profile_small)
            {
                Err(PlanError::DeltaMismatch {
                    what: "old vertex count",
                    expected: 40,
                    found: 60,
                }) => {}
                other => panic!("expected old-vertex-count mismatch, got {other:?}"),
            }

            // Right base, wrong successor graph.
            let (core, th) = HybridState::from_masters(
                &geo_small,
                &env,
                geo_small.locations.clone(),
                4,
                profile_small.clone(),
                10.0,
            )
            .into_parts();
            match HybridState::resume_from_parts(core, th, &geo_big, &env, &delta, &profile_big) {
                Err(PlanError::DeltaMismatch {
                    what: "new vertex count",
                    expected: 40,
                    found: 60,
                }) => {}
                other => panic!("expected new-vertex-count mismatch, got {other:?}"),
            }

            // Right graphs, short profile.
            let (core, th) = HybridState::from_masters(
                &geo_small,
                &env,
                geo_small.locations.clone(),
                4,
                profile_small.clone(),
                10.0,
            )
            .into_parts();
            match HybridState::resume_from_parts(
                core,
                th,
                &geo_small,
                &env,
                &delta,
                &TrafficProfile::uniform(10, 8.0),
            ) {
                Err(PlanError::DeltaMismatch {
                    what: "profile length",
                    expected: 40,
                    found: 10,
                }) => {}
                other => panic!("expected profile-length mismatch, got {other:?}"),
            }
        }

        #[test]
        fn training_moves_compose_with_window_deltas() {
            // Interleave RL-style master moves with window deltas and make
            // sure the incremental bookkeeping survives the combination.
            let env = ec2_eight_regions();
            let m = env.num_dcs();
            let theta = 4usize;
            let mut g = geograph::generators::erdos_renyi(100, 400, 23);
            let geo = geo_at(g.clone(), m);
            let s = HybridState::from_masters(
                &geo,
                &env,
                geo.locations.clone(),
                theta,
                TrafficProfile::uniform(100, 8.0),
                10.0,
            );
            let mut parts = s.into_parts();
            let mut rng = SmallRng::seed_from_u64(29);
            for w in 0..3u64 {
                let n = g.num_vertices() as u32;
                let events: Vec<_> = (0..15)
                    .map(|i| {
                        let src = if rng.gen_bool(0.25) {
                            n + rng.gen_range(0..3u32)
                        } else {
                            rng.gen_range(0..n)
                        };
                        ev(src, rng.gen_range(0..n), 10 * w + i, EventKind::Insert)
                    })
                    .collect();
                let delta = GraphDelta::from_events(&g, &events);
                g = g.apply_delta(&delta);
                let geo_w = geo_at(g.clone(), m);
                let profile_w = TrafficProfile::uniform(geo_w.num_vertices(), 8.0);
                let (core, th) = parts;
                let (mut s, _) =
                    HybridState::resume_from_parts(core, th, &geo_w, &env, &delta, &profile_w)
                        .unwrap();
                for _ in 0..30 {
                    let v = rng.gen_range(0..geo_w.num_vertices()) as VertexId;
                    let to = rng.gen_range(0..m) as DcId;
                    s.apply_move(&env, v, to);
                }
                s.check_consistency(&env);
                parts = s.into_parts();
            }
        }
    }

    #[test]
    fn hybrid_beats_all_high_on_replication() {
        // The Fig 2 claim: differentiated placement lowers λ versus treating
        // everything as high-degree (vertex-cut-like hashing).
        let (geo, env) = setup(10);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let hybrid = HybridState::from_masters(
            &geo,
            &env,
            geo.locations.clone(),
            theta,
            profile.clone(),
            10.0,
        );
        let all_high =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), 1, profile, 10.0);
        assert!(
            hybrid.core().replication_factor() <= all_high.core().replication_factor(),
            "hybrid λ {} vs all-high λ {}",
            hybrid.core().replication_factor(),
            all_high.core().replication_factor()
        );
    }
}
