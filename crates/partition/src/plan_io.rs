//! Persisting and reloading partitioning plans.
//!
//! A trained plan is just its assignment vector — master locations for the
//! replica-based models, vertex labels for edge-cut, per-edge DCs for
//! vertex-cut. The format is a line-oriented text file with a header
//! carrying the element count and a FNV-style checksum, so a plan produced
//! by one run can be audited, diffed, and re-applied later (e.g. to warm-
//! start a dynamic window after a restart).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::DcId;

const MAGIC: &str = "geopart-assignment-v1";

/// Errors from plan (de)serialization.
#[derive(Debug)]
pub enum PlanIoError {
    Io(io::Error),
    /// The file is not a plan file or has a corrupt header.
    BadHeader(String),
    /// Element count or checksum mismatch.
    Corrupt {
        expected: String,
        found: String,
    },
    /// An entry names a DC outside the environment (1-based line number,
    /// counting the header as line 1).
    EntryOutOfRange {
        line: usize,
        dc: DcId,
        num_dcs: usize,
    },
    /// The plan's element count doesn't match what the caller expects
    /// (e.g. a plan for a different graph).
    WrongLength {
        expected: usize,
        found: usize,
    },
}

impl std::fmt::Display for PlanIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanIoError::Io(e) => write!(f, "I/O error: {e}"),
            PlanIoError::BadHeader(line) => write!(f, "bad plan header: {line:?}"),
            PlanIoError::Corrupt { expected, found } => {
                write!(f, "plan corrupt: expected {expected}, found {found}")
            }
            PlanIoError::EntryOutOfRange { line, dc, num_dcs } => {
                write!(f, "line {line}: DC id {dc} out of range (environment has {num_dcs} DCs)")
            }
            PlanIoError::WrongLength { expected, found } => {
                write!(f, "plan has {found} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PlanIoError {}

impl From<io::Error> for PlanIoError {
    fn from(e: io::Error) -> Self {
        PlanIoError::Io(e)
    }
}

fn checksum(assignment: &[DcId]) -> u64 {
    // FNV-1a over the raw bytes: stable, order-sensitive, cheap.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &d in assignment {
        hash ^= d as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes an assignment vector (any model) to `path`.
pub fn save_assignment(assignment: &[DcId], path: &Path) -> Result<(), PlanIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# {MAGIC} count={} checksum={:016x}", assignment.len(), checksum(assignment))?;
    for &d in assignment {
        writeln!(w, "{d}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an assignment vector written by [`save_assignment`], verifying
/// count and checksum.
pub fn load_assignment(path: &Path) -> Result<Vec<DcId>, PlanIoError> {
    load_entries(path).map(|(assignment, _)| assignment)
}

/// Reads an assignment like [`load_assignment`], additionally checking the
/// element count against `expected_len` and every DC id against `num_dcs`,
/// naming the offending 1-based line on failure. The entry point for plan
/// files from the CLI: a malformed file surfaces as a typed error, never a
/// downstream index panic.
pub fn load_assignment_for(
    path: &Path,
    expected_len: usize,
    num_dcs: usize,
) -> Result<Vec<DcId>, PlanIoError> {
    let (assignment, lines) = load_entries(path)?;
    if assignment.len() != expected_len {
        return Err(PlanIoError::WrongLength { expected: expected_len, found: assignment.len() });
    }
    if let Some(i) = assignment.iter().position(|&d| d as usize >= num_dcs) {
        return Err(PlanIoError::EntryOutOfRange { line: lines[i], dc: assignment[i], num_dcs });
    }
    Ok(assignment)
}

/// Shared loader: the assignment plus each entry's 1-based line number
/// (the header is line 1; blank lines shift subsequent entries).
fn load_entries(path: &Path) -> Result<(Vec<DcId>, Vec<usize>), PlanIoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let header = header.trim();
    let rest = header
        .strip_prefix(&format!("# {MAGIC} "))
        .ok_or_else(|| PlanIoError::BadHeader(header.to_string()))?;
    let mut count = None;
    let mut expected_sum = None;
    for part in rest.split_whitespace() {
        if let Some(c) = part.strip_prefix("count=") {
            count = c.parse::<usize>().ok();
        } else if let Some(s) = part.strip_prefix("checksum=") {
            expected_sum = u64::from_str_radix(s, 16).ok();
        }
    }
    let (Some(count), Some(expected_sum)) = (count, expected_sum) else {
        return Err(PlanIoError::BadHeader(header.to_string()));
    };
    let mut assignment = Vec::with_capacity(count);
    let mut lines = Vec::with_capacity(count);
    let mut line = String::new();
    let mut line_no = 1usize; // the header
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let d: DcId = trimmed.parse().map_err(|_| PlanIoError::Corrupt {
            expected: "a DC id per line".to_string(),
            found: trimmed.to_string(),
        })?;
        assignment.push(d);
        lines.push(line_no);
    }
    if assignment.len() != count {
        return Err(PlanIoError::Corrupt {
            expected: format!("{count} entries"),
            found: format!("{}", assignment.len()),
        });
    }
    let actual = checksum(&assignment);
    if actual != expected_sum {
        return Err(PlanIoError::Corrupt {
            expected: format!("checksum {expected_sum:016x}"),
            found: format!("{actual:016x}"),
        });
    }
    Ok((assignment, lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("geopart_plan_io");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let path = tmp("rt.plan");
        let assignment: Vec<DcId> = (0..1000).map(|i| (i % 8) as DcId).collect();
        save_assignment(&assignment, &path).unwrap();
        assert_eq!(load_assignment(&path).unwrap(), assignment);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_assignment() {
        let path = tmp("empty.plan");
        save_assignment(&[], &path).unwrap();
        assert!(load_assignment(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncation() {
        let path = tmp("trunc.plan");
        save_assignment(&[1, 2, 3, 4], &path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        let truncated: String = contents.lines().take(3).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, truncated).unwrap();
        assert!(matches!(load_assignment(&path), Err(PlanIoError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_tampering() {
        let path = tmp("tamper.plan");
        save_assignment(&[1, 2, 3, 4], &path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        // Flip one assignment without touching the header.
        let tampered = contents.replacen("\n2\n", "\n5\n", 1);
        assert_ne!(contents, tampered);
        std::fs::write(&path, tampered).unwrap();
        assert!(matches!(load_assignment(&path), Err(PlanIoError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checked_loader_names_offending_line() {
        let path = tmp("range.plan");
        save_assignment(&[1, 2, 7, 3], &path).unwrap();
        // DC 7 sits on line 4 (header is line 1) and exceeds a 4-DC env.
        match load_assignment_for(&path, 4, 4) {
            Err(PlanIoError::EntryOutOfRange { line: 4, dc: 7, num_dcs: 4 }) => {}
            other => panic!("expected out-of-range at line 4, got {other:?}"),
        }
        // Wrong expected length is typed too.
        match load_assignment_for(&path, 9, 8) {
            Err(PlanIoError::WrongLength { expected: 9, found: 4 }) => {}
            other => panic!("expected wrong-length, got {other:?}"),
        }
        // In-range passes.
        assert_eq!(load_assignment_for(&path, 4, 8).unwrap(), vec![1, 2, 7, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign.plan");
        std::fs::write(&path, "not a plan\n1\n2\n").unwrap();
        assert!(matches!(load_assignment(&path), Err(PlanIoError::BadHeader(_))));
        std::fs::remove_file(&path).ok();
    }
}
