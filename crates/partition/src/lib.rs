//! # geopart — partitioning models and plan machinery
//!
//! Implements the three partitioning models the paper compares (§II-B) and
//! the state representation RLCut trains over (§IV-B):
//!
//! * **Hybrid-cut** ([`hybrid::HybridState`]) — the model RLCut adopts.
//!   The *state* is the vector of master locations `L_v`; edge placement is
//!   derived (in-edges of a low-degree vertex follow its master, in-edges of
//!   a high-degree vertex follow the source's master) and mirrors are
//!   created wherever a vertex's edges land. Supports **O(deg(v))
//!   incremental evaluation** of single-vertex moves — the workhorse of the
//!   RL score function (Eq 10) and the reason straggler mitigation
//!   schedules agents by degree (§V-B).
//! * **Vertex-cut** ([`vertexcut::VertexCutState`]) — explicit per-edge DC
//!   assignment, every vertex computed with full GAS (PowerGraph).
//! * **Edge-cut** ([`edgecut::EdgeCutState`]) — per-vertex DC assignment,
//!   Pregel-style combiner messages along cut edges (Spinner, Revolver).
//!
//! All models evaluate to an [`Objective`]: per-iteration inter-DC transfer
//! time (Eq 1–3) plus movement and runtime monetary cost (Eq 4–5), so
//! partitioners across models are compared on identical terms.
//!
//! Move evaluation runs through the batched one-sweep kernel in
//! [`kernel`]: [`PlacementState::evaluate_all_moves`] scores all `M`
//! destinations of a vertex from a single neighborhood sweep into a
//! reusable [`MoveScratch`] arena, bit-identical to `M` independent
//! single-destination evaluations.

pub mod edgecut;
pub mod error;
pub mod hybrid;
pub mod kernel;
pub mod metrics;
pub mod plan_io;
pub mod profile;
pub mod shard;
pub mod snapshot;
pub mod state;
pub mod vertexcut;

pub use edgecut::EdgeCutState;
pub use error::PlanError;
pub use hybrid::{EvacuationReport, HybridState};
pub use kernel::{MoveScratch, ScratchStats};
pub use profile::TrafficProfile;
pub use shard::{export_row, RowSync, ShardPlacement};
pub use state::{DeltaApplyStats, Objective, PlacementState};

pub use geograph::{DcId, VertexId};
