//! Expected per-iteration traffic of the analytics job.

/// Expected message sizes per vertex per iteration.
///
/// The paper's performance model (Eq 1–3) is parameterized by `g_v^r(i)`
/// (bytes a mirror DC sends the master in the gather stage) and `a_v(i)`
/// (bytes the master sends each mirror in the apply stage). When the
/// partitioner optimizes offline it cannot know the exact per-iteration
/// values, so it works from an *expected* profile: uniform for PageRank
/// (every vertex active every iteration), activity-weighted for SSSP/SI
/// (derived by `geoengine` from a reference execution).
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficProfile {
    /// Expected gather bytes per mirror-DC per iteration (`g_v`).
    pub gather_bytes: Vec<f32>,
    /// Expected apply bytes per mirror per iteration (`a_v`).
    pub apply_bytes: Vec<f32>,
}

impl TrafficProfile {
    /// Uniform profile: every vertex exchanges `bytes` in both stages each
    /// iteration — the PageRank-style workload.
    pub fn uniform(num_vertices: usize, bytes: f32) -> Self {
        TrafficProfile {
            gather_bytes: vec![bytes; num_vertices],
            apply_bytes: vec![bytes; num_vertices],
        }
    }

    /// A profile from explicit per-vertex activity weights in `[0, 1]`
    /// scaled by a base message size (SSSP/SI-style workloads).
    pub fn weighted(weights: &[f32], bytes: f32) -> Self {
        TrafficProfile {
            gather_bytes: weights.iter().map(|w| w * bytes).collect(),
            apply_bytes: weights.iter().map(|w| w * bytes).collect(),
        }
    }

    /// Number of vertices the profile covers.
    pub fn len(&self) -> usize {
        self.gather_bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.gather_bytes.is_empty()
    }

    /// Gather bytes of vertex `v` as f64 (the load accumulators are f64).
    #[inline]
    pub fn g(&self, v: geograph::VertexId) -> f64 {
        self.gather_bytes[v as usize] as f64
    }

    /// Apply bytes of vertex `v` as f64.
    #[inline]
    pub fn a(&self, v: geograph::VertexId) -> f64 {
        self.apply_bytes[v as usize] as f64
    }

    /// Grows the profile to cover `n` vertices, filling new entries with
    /// `bytes` (dynamic graphs add vertices between windows).
    pub fn grow(&mut self, n: usize, bytes: f32) {
        if n > self.gather_bytes.len() {
            self.gather_bytes.resize(n, bytes);
            self.apply_bytes.resize(n, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform() {
        let p = TrafficProfile::uniform(3, 8.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.g(0), 8.0);
        assert_eq!(p.a(2), 8.0);
    }

    #[test]
    fn weighted() {
        let p = TrafficProfile::weighted(&[0.0, 0.5, 1.0], 8.0);
        assert_eq!(p.g(0), 0.0);
        assert_eq!(p.a(1), 4.0);
        assert_eq!(p.g(2), 8.0);
    }

    #[test]
    fn grow_extends_only_forward() {
        let mut p = TrafficProfile::uniform(2, 8.0);
        p.grow(4, 2.0);
        assert_eq!(p.len(), 4);
        assert_eq!(p.g(3), 2.0);
        p.grow(1, 99.0);
        assert_eq!(p.len(), 4);
    }
}
