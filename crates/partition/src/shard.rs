//! Per-shard placement replicas for the sharded trainer.
//!
//! A [`ShardPlacement`] is a **compacted** [`PlacementState`] over one
//! shard's working set (owned vertices plus the ghost fringe), indexed by
//! the shard view's local ids. It is a *scoring replica*: the coordinator
//! owns the authoritative global state and streams verbatim copies of the
//! rows a shard needs ([`RowSync`]) plus the global load accumulators
//! ([`ShardPlacement::sync_loads`]); the replica never applies moves
//! itself.
//!
//! ## Why replica scoring is bit-identical
//!
//! [`PlacementState::evaluate_all_moves`] reads, for a candidate vertex
//! `v`: `v`'s master, the packed [`VertexMeta`] record and count row of
//! every staged neighbor, and the global gather/apply loads + movement
//! cost + iteration count behind `objective()`. Hybrid-cut staging touches
//! exactly `v` and its in/out neighbors — all inside owned ∪ fringe by the
//! fringe's construction — and every one of those inputs is a verbatim
//! copy here. Local ids ascend with global ids (see
//! [`geograph::ShardView`]), so the scratch arena's sort-and-merge and
//! every floating-point accumulation run in the *same order* over the
//! *same values* as the global kernel: the objectives agree bit-for-bit.
//!
//! [`VertexMeta`]: crate::state::VertexMeta

use geograph::ShardView;
use geosim::{CloudEnv, StageLoads};

use crate::kernel::{CntDelta, MoveScratch};
use crate::profile::TrafficProfile;
use crate::state::{Objective, PlacementState, VertexMeta};
use crate::{DcId, VertexId};

/// A verbatim copy of one vertex's placement row — everything shard-local
/// scoring reads about a vertex: the interleaved in/out count row, the
/// packed kernel metadata, and the movement-cost inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct RowSync {
    /// Interleaved `[in, out]` counts, `2 · M` lanes.
    pub counts: Vec<u32>,
    /// Occupancy bitmask over the count row.
    pub nnz: u64,
    /// Expected gather bytes (`g_v`).
    pub g: f32,
    /// Expected apply bytes (`a_v`).
    pub a: f32,
    /// Master DC.
    pub master: DcId,
    /// High-degree class.
    pub high: bool,
    /// Natural (home) DC — the Eq 4 movement-cost origin.
    pub location: DcId,
    /// Input data size in bytes — the Eq 4 movement-cost weight.
    pub data_size: u64,
}

impl RowSync {
    /// Bytes this row would occupy on a wire: the shuffle layer's
    /// accounting unit (counts + mask + profile pair + master/class +
    /// location + size).
    pub fn wire_bytes(&self) -> u64 {
        (self.counts.len() * 4 + 8 + 4 + 4 + 1 + 1 + 1 + 8) as u64
    }
}

/// Exports vertex `v`'s placement row from an authoritative global state
/// as a [`RowSync`], ready to ship to every shard holding `v` locally.
pub fn export_row(core: &PlacementState, location: DcId, data_size: u64, v: VertexId) -> RowSync {
    let meta = core.meta[v as usize];
    RowSync {
        counts: core.counts_row(v).to_vec(),
        nnz: meta.nnz,
        g: meta.g,
        a: meta.a,
        master: meta.master,
        high: meta.high,
        location,
        data_size,
    }
}

/// One shard's compacted placement replica: a [`PlacementState`] whose
/// vertex dimension is the shard's local working set, plus the per-local
/// movement-cost inputs the global state keeps in the `GeoGraph`.
#[derive(Clone, Debug)]
pub struct ShardPlacement {
    core: PlacementState,
    locations: Vec<DcId>,
    data_sizes: Vec<u64>,
}

impl ShardPlacement {
    /// An empty replica for `num_locals` local vertices over `num_dcs`
    /// DCs. All rows and loads start zeroed; the coordinator populates
    /// them through [`Self::sync_row`] / [`Self::sync_loads`] before the
    /// first scoring request.
    pub fn new(num_dcs: usize, num_locals: usize, num_iterations: f64) -> ShardPlacement {
        let core = PlacementState {
            num_dcs,
            masters: vec![0; num_locals],
            is_high: vec![false; num_locals],
            counts: vec![0; num_locals * num_dcs * 2],
            meta: vec![VertexMeta::default(); num_locals],
            edges_per_dc: vec![0; num_dcs],
            gather: StageLoads::new(num_dcs),
            apply: StageLoads::new(num_dcs),
            movement_cost: 0.0,
            profile: TrafficProfile {
                gather_bytes: vec![0.0; num_locals],
                apply_bytes: vec![0.0; num_locals],
            },
            num_iterations,
        };
        ShardPlacement { core, locations: vec![0; num_locals], data_sizes: vec![0; num_locals] }
    }

    /// Number of local vertices this replica covers.
    pub fn num_locals(&self) -> usize {
        self.core.masters.len()
    }

    /// Overwrites local vertex `local`'s row with a verbatim copy shipped
    /// from the authoritative state.
    pub fn sync_row(&mut self, local: u32, row: &RowSync) {
        let l = local as usize;
        let m = self.core.num_dcs;
        debug_assert_eq!(row.counts.len(), m * 2);
        self.core.counts[l * m * 2..(l + 1) * m * 2].copy_from_slice(&row.counts);
        self.core.meta[l] =
            VertexMeta { nnz: row.nnz, g: row.g, a: row.a, master: row.master, high: row.high };
        self.core.masters[l] = row.master;
        self.core.is_high[l] = row.high;
        self.core.profile.gather_bytes[l] = row.g;
        self.core.profile.apply_bytes[l] = row.a;
        self.locations[l] = row.location;
        self.data_sizes[l] = row.data_size;
    }

    /// Overwrites the replica's global aggregates: the per-DC gather/apply
    /// load accumulators and the accumulated Eq 4 movement cost. Every
    /// migration changes these for *all* shards, so the coordinator ships
    /// them after each applied batch.
    pub fn sync_loads(&mut self, gather: StageLoads, apply: StageLoads, movement_cost: f64) {
        self.core.gather = gather;
        self.core.apply = apply;
        self.core.movement_cost = movement_cost;
    }

    /// Master of local vertex `local`.
    pub fn master_local(&self, local: u32) -> DcId {
        self.core.masters[local as usize]
    }

    /// Resident heap bytes of this replica: the compacted placement state
    /// plus the per-local movement-cost inputs. Summed over shards this
    /// is the placement-plane footprint of a sharded run — the quantity
    /// the shard-resident ingest path keeps per-node instead of global.
    pub fn heap_bytes(&self) -> usize {
        self.core.heap_bytes()
            + self.locations.capacity() * std::mem::size_of::<DcId>()
            + self.data_sizes.capacity() * std::mem::size_of::<u64>()
    }

    /// The replica's current objective under `env` — equals the global
    /// objective whenever the loads are in sync.
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        self.core.objective(env)
    }

    /// Evaluates moving owned vertex `v` (a **global** id) to every DC,
    /// shard-locally — the replica twin of
    /// [`crate::HybridState::evaluate_all_moves`], staging the identical
    /// hybrid-cut count deltas over the shard view's local adjacency and
    /// patching the identical per-destination Eq 4 movement cost.
    pub fn evaluate_all_moves<'s>(
        &self,
        env: &CloudEnv,
        view: &ShardView,
        v: VertexId,
        scratch: &'s mut MoveScratch,
    ) -> &'s [Objective] {
        let lv = view.to_local(v).expect("agent must be local to its owner shard");
        self.collect_deltas_into(view, v, lv, scratch);
        self.core.evaluate_all_moves(env, lv, scratch);
        let a = self.core.masters[lv as usize];
        let loc = self.locations[lv as usize];
        let size = self.data_sizes[lv as usize];
        let base = self.core.movement_cost - geosim::cost::vertex_move_cost(env, loc, a, size);
        for (d, obj) in scratch.objectives_mut().iter_mut().enumerate() {
            if d != a as usize {
                obj.movement_cost =
                    base + geosim::cost::vertex_move_cost(env, loc, d as DcId, size);
            }
        }
        scratch.objectives()
    }

    /// The local-id twin of `HybridState::collect_deltas_into`: identical
    /// traversal (in-neighbors of a low `v`, then high out-neighbors, in
    /// CSR order), identical deltas, local ids instead of global. The
    /// sealed sort orders by local id — the same permutation as the global
    /// sort because the mapping is monotone.
    fn collect_deltas_into(
        &self,
        view: &ShardView,
        v: VertexId,
        lv: u32,
        scratch: &mut MoveScratch,
    ) {
        scratch.begin_stage();
        let mut self_delta = CntDelta::default();
        if !self.core.is_high[lv as usize] {
            for &lu in view.in_neighbors_of(v) {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
                if lu == lv {
                    self_delta.out_a -= 1;
                    self_delta.out_b += 1;
                } else {
                    scratch
                        .push_neighbor(lu, CntDelta { out_a: -1, out_b: 1, ..CntDelta::default() });
                }
            }
        }
        for &lw in view.out_neighbors_of(v) {
            if !self.core.is_high[lw as usize] {
                continue;
            }
            self_delta.out_a -= 1;
            self_delta.out_b += 1;
            if lw == lv {
                self_delta.in_a -= 1;
                self_delta.in_b += 1;
            } else {
                scratch.push_neighbor(lw, CntDelta { in_a: -1, in_b: 1, ..CntDelta::default() });
            }
        }
        scratch.self_delta = self_delta;
        scratch.seal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HybridState;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geograph::{GeoGraph, ShardSpec};
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(256, 1024), 5);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(5)), ec2_eight_regions())
    }

    /// Builds a fully synced replica of `state` for shard `s`.
    fn replica(state: &HybridState<'_>, geo: &GeoGraph, view: &ShardView) -> ShardPlacement {
        let m = state.core().num_dcs();
        let mut p = ShardPlacement::new(m, view.num_locals(), state.core().num_iterations());
        for (l, &v) in view.locals().iter().enumerate() {
            let row =
                export_row(state.core(), geo.locations[v as usize], geo.data_sizes[v as usize], v);
            p.sync_row(l as u32, &row);
        }
        p.sync_loads(
            state.core().gather_loads().clone(),
            state.core().apply_loads().clone(),
            state.core().movement_cost(),
        );
        p
    }

    #[test]
    fn replica_scoring_is_bit_identical_to_global() {
        let (geo, env) = setup();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let state = HybridState::from_masters(&geo, &env, geo.locations.clone(), 8, profile, 10.0);
        for shards in [1usize, 2, 4, 8] {
            let spec = ShardSpec::contiguous(geo.num_vertices(), shards);
            for s in 0..shards {
                let view = ShardView::build(&geo.graph, &spec, s);
                let p = replica(&state, &geo, &view);
                let (start, end) = view.owned_range();
                let mut global_scratch = MoveScratch::new();
                let mut local_scratch = MoveScratch::new();
                for v in start..end {
                    let global = state.evaluate_all_moves(&env, v, &mut global_scratch).to_vec();
                    let local = p.evaluate_all_moves(&env, &view, v, &mut local_scratch).to_vec();
                    for (d, (g, l)) in global.iter().zip(&local).enumerate() {
                        assert!(
                            g.transfer_time.to_bits() == l.transfer_time.to_bits()
                                && g.movement_cost.to_bits() == l.movement_cost.to_bits()
                                && g.runtime_cost.to_bits() == l.runtime_cost.to_bits(),
                            "shards={shards} shard={s} v={v} dest={d}: {g:?} != {l:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stale_replica_resyncs_after_migration() {
        let (geo, env) = setup();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let mut state =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), 8, profile, 10.0);
        let spec = ShardSpec::contiguous(geo.num_vertices(), 2);
        let view = ShardView::build(&geo.graph, &spec, 0);
        let mut p = replica(&state, &geo, &view);

        // Apply a move on the authoritative state, then re-sync only the
        // touched rows + loads; the replica must agree again.
        let v: VertexId = 3;
        let to = (state.master(v) + 1) % env.num_dcs() as DcId;
        let mut scratch = MoveScratch::new();
        state.apply_move_with(&env, v, to, &mut scratch);

        let mut dirty: Vec<VertexId> = vec![v];
        dirty.extend_from_slice(geo.graph.in_neighbors(v));
        dirty.extend_from_slice(geo.graph.out_neighbors(v));
        dirty.sort_unstable();
        dirty.dedup();
        for d in dirty {
            if let Some(l) = view.to_local(d) {
                let row = export_row(
                    state.core(),
                    geo.locations[d as usize],
                    geo.data_sizes[d as usize],
                    d,
                );
                p.sync_row(l, &row);
            }
        }
        p.sync_loads(
            state.core().gather_loads().clone(),
            state.core().apply_loads().clone(),
            state.core().movement_cost(),
        );

        let (start, end) = view.owned_range();
        let mut gs = MoveScratch::new();
        let mut ls = MoveScratch::new();
        for u in start..end {
            let global = state.evaluate_all_moves(&env, u, &mut gs).to_vec();
            let local = p.evaluate_all_moves(&env, &view, u, &mut ls).to_vec();
            assert_eq!(global, local, "vertex {u} diverged after resync");
        }
    }

    #[test]
    fn replica_heap_bytes_track_the_local_working_set() {
        let (geo, env) = setup();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let state = HybridState::from_masters(&geo, &env, geo.locations.clone(), 8, profile, 10.0);
        let spec = ShardSpec::contiguous(geo.num_vertices(), 4);
        let view = ShardView::build(&geo.graph, &spec, 0);
        let p = replica(&state, &geo, &view);
        let locals = view.num_locals();
        // Floor: the compacted core plus locations (DcId) and sizes (u64).
        assert!(p.heap_bytes() >= locals * (std::mem::size_of::<DcId>() + 8));
        // The replica's placement plane is a strict fraction of the global
        // state's — that is the point of shard residency.
        assert!(p.heap_bytes() < state.core().heap_bytes());
    }
}
