//! Typed WAL records and their wire codecs.
//!
//! One dynamic window is one WAL transaction, written as:
//!
//! 1. [`WindowStart`] — everything the window consumes that is not already
//!    implied by prior state: the graph delta, the location / data-size /
//!    traffic-profile *suffixes* for new vertices (prefixes are invariant
//!    across windows, so logging them again would be redundant and would
//!    let the log contradict itself), the iteration count, and the
//!    dead-DC flags if a fault forced this window onto the rebuild path.
//!    Logged and synced *before* training starts.
//! 2. Zero or more [`Batch`] records — the accepted migration moves of one
//!    training step, in exact apply order. The end-of-session reconcile
//!    sweep (live → best plan) is a batch with `step ==`
//!    [`Batch::RECONCILE_STEP`].
//! 3. [`Commit`] — pins the window's outputs: carried theta, the final
//!    `movement_cost` (the *only* environment-dependent placement field,
//!    overridden at replay so recovery needs no environment), and an
//!    FNV-1a hash of the master vector so replay divergence is detected
//!    rather than trusted.
//!
//! Payloads are deliberately environment-free: replaying batches through
//! [`geopart::HybridState::apply_move_with`] against *any* environment
//! yields bit-identical placement accumulators, because every load/count
//! mutation depends only on the graph, the profile, and the move sequence.

use geograph::wire::{self, Reader, WireError};
use geograph::{DcId, GraphDelta, VertexId, MAX_DCS};

use crate::error::DurableError;

/// Record kind byte for [`WindowStart`].
pub const KIND_WINDOW_START: u8 = 1;
/// Record kind byte for [`Batch`].
pub const KIND_BATCH: u8 = 2;
/// Record kind byte for [`Commit`].
pub const KIND_COMMIT: u8 = 3;

/// Opens window `window`: the inputs of one dynamic-window transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowStart {
    pub window: u64,
    /// Graph change entering this window; `None` for the genesis window
    /// (full graph lives in the snapshot) and for rebuild-from-scratch
    /// windows where the trainer ignores deltas.
    pub delta: Option<GraphDelta>,
    /// Master locations of vertices new in this window
    /// (`geo.locations[old_n..]`).
    pub loc_suffix: Vec<DcId>,
    /// Data sizes of new vertices (`geo.data_sizes[old_n..]`).
    pub size_suffix: Vec<u64>,
    /// Traffic-profile gather bytes of new vertices.
    pub gather_suffix: Vec<f32>,
    /// Traffic-profile apply bytes of new vertices.
    pub apply_suffix: Vec<f32>,
    /// Analytics iteration count the window amortizes movement over.
    pub num_iterations: f64,
    /// Per-DC outage flags when a fault forced a rebuild + reseed window;
    /// `None` on the incremental path.
    pub dead: Option<Vec<bool>>,
    /// [`crate::error::env_fingerprint`] of the environment this window
    /// trained under; replay refuses a store offered a different one.
    pub env_fp: u64,
}

/// Accepted migration moves of one training step, in exact apply order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    pub window: u64,
    /// Training step index, or [`Self::RECONCILE_STEP`] for the
    /// end-of-session reconcile sweep onto the best plan.
    pub step: u32,
    pub moves: Vec<(VertexId, DcId)>,
}

impl Batch {
    /// Sentinel step index for the reconcile sweep that moves the live
    /// state onto the best-seen plan after the last training step.
    pub const RECONCILE_STEP: u32 = u32::MAX;
}

/// Seals window `window`: after these outputs the window is durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commit {
    pub window: u64,
    /// High-degree threshold carried out of the window.
    pub theta: u64,
    /// Final `movement_cost` accumulator bits. Replay overrides the
    /// replayed state's accumulator with this value — it is the only
    /// placement field whose evolution depends on the (unlogged)
    /// environment.
    pub movement_cost_bits: u64,
    /// FNV-1a over the final master vector; replay cross-checks it.
    pub masters_fnv: u64,
}

/// A decoded WAL record.
///
/// The variant sizes are inherently lopsided — a `WindowStart` carries
/// the window's whole `GraphDelta` while a `Commit` is four words — and
/// records are transient framing values, never held in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    WindowStart(WindowStart),
    Batch(Batch),
    Commit(Commit),
}

impl Record {
    /// Kind byte stored in the WAL frame.
    pub fn kind(&self) -> u8 {
        match self {
            Record::WindowStart(_) => KIND_WINDOW_START,
            Record::Batch(_) => KIND_BATCH,
            Record::Commit(_) => KIND_COMMIT,
        }
    }

    /// Serializes the record payload (kind byte travels in the frame).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::WindowStart(ws) => {
                out.extend_from_slice(&ws.window.to_le_bytes());
                match &ws.delta {
                    Some(d) => {
                        out.push(1);
                        wire::encode_delta(d, &mut out);
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&(ws.loc_suffix.len() as u64).to_le_bytes());
                out.extend_from_slice(&ws.loc_suffix);
                out.extend_from_slice(&(ws.size_suffix.len() as u64).to_le_bytes());
                for &s in &ws.size_suffix {
                    out.extend_from_slice(&s.to_le_bytes());
                }
                put_f32s(&mut out, &ws.gather_suffix);
                put_f32s(&mut out, &ws.apply_suffix);
                out.extend_from_slice(&ws.num_iterations.to_bits().to_le_bytes());
                match &ws.dead {
                    Some(dead) => {
                        out.push(1);
                        out.extend_from_slice(&(dead.len() as u64).to_le_bytes());
                        out.extend(dead.iter().map(|&d| d as u8));
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&ws.env_fp.to_le_bytes());
            }
            Record::Batch(b) => {
                out.extend_from_slice(&b.window.to_le_bytes());
                out.extend_from_slice(&b.step.to_le_bytes());
                out.extend_from_slice(&(b.moves.len() as u64).to_le_bytes());
                for &(v, d) in &b.moves {
                    out.extend_from_slice(&v.to_le_bytes());
                    out.push(d);
                }
            }
            Record::Commit(c) => {
                out.extend_from_slice(&c.window.to_le_bytes());
                out.extend_from_slice(&c.theta.to_le_bytes());
                out.extend_from_slice(&c.movement_cost_bits.to_le_bytes());
                out.extend_from_slice(&c.masters_fnv.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a record payload. `lsn` only labels errors.
    pub fn from_payload(kind: u8, payload: &[u8], lsn: u64) -> Result<Record, DurableError> {
        let mut r = Reader::new(payload);
        let rec = match kind {
            KIND_WINDOW_START => {
                let window = r.u64()?;
                let delta = match r.u8()? {
                    0 => None,
                    1 => Some(wire::decode_delta(&mut r)?),
                    _ => return Err(WireError::Malformed("delta presence flag").into()),
                };
                let n_loc = r.len(1)?;
                let loc_suffix = r.take(n_loc)?.to_vec();
                if loc_suffix.iter().any(|&d| (d as usize) >= MAX_DCS) {
                    return Err(WireError::Malformed("location suffix out of range").into());
                }
                let n_size = r.len(8)?;
                let size_suffix = r.u64s(n_size)?;
                let n_gather = r.len(4)?;
                let gather_suffix = r.f32s(n_gather)?;
                let n_apply = r.len(4)?;
                let apply_suffix = r.f32s(n_apply)?;
                let num_iterations = r.f64()?;
                let dead = match r.u8()? {
                    0 => None,
                    1 => {
                        let n = r.len(1)?;
                        let flags = r.take(n)?;
                        if flags.iter().any(|&b| b > 1) {
                            return Err(WireError::Malformed("dead flag byte").into());
                        }
                        Some(flags.iter().map(|&b| b == 1).collect())
                    }
                    _ => return Err(WireError::Malformed("dead presence flag").into()),
                };
                let env_fp = r.u64()?;
                Record::WindowStart(WindowStart {
                    window,
                    delta,
                    loc_suffix,
                    size_suffix,
                    gather_suffix,
                    apply_suffix,
                    num_iterations,
                    dead,
                    env_fp,
                })
            }
            KIND_BATCH => {
                let window = r.u64()?;
                let step = r.u32()?;
                let n = r.len(5)?;
                let mut moves = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = r.u32()?;
                    let d = r.u8()?;
                    if (d as usize) >= MAX_DCS {
                        return Err(WireError::Malformed("move destination out of range").into());
                    }
                    moves.push((v, d));
                }
                Record::Batch(Batch { window, step, moves })
            }
            KIND_COMMIT => {
                let window = r.u64()?;
                let theta = r.u64()?;
                let movement_cost_bits = r.u64()?;
                let masters_fnv = r.u64()?;
                Record::Commit(Commit { window, theta, movement_cost_bits, masters_fnv })
            }
            kind => return Err(DurableError::UnknownRecordKind { lsn, kind }),
        };
        r.finish()?;
        Ok(rec)
    }
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::dynamic::{EdgeEvent, EventKind};
    use geograph::GraphBuilder;

    fn sample_delta() -> GraphDelta {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let g = b.build();
        let events = vec![
            EdgeEvent { src: 0, dst: 4, timestamp_ms: 0, kind: EventKind::Insert },
            EdgeEvent { src: 1, dst: 2, timestamp_ms: 1, kind: EventKind::Delete },
            EdgeEvent { src: 7, dst: 3, timestamp_ms: 2, kind: EventKind::Insert },
        ];
        GraphDelta::from_events(&g, &events)
    }

    fn round_trip(rec: &Record) -> Record {
        Record::from_payload(rec.kind(), &rec.to_payload(), 0).unwrap()
    }

    #[test]
    fn window_start_round_trips() {
        let rec = Record::WindowStart(WindowStart {
            window: 3,
            delta: Some(sample_delta()),
            loc_suffix: vec![2, 0],
            size_suffix: vec![100, 250],
            gather_suffix: vec![8.0, 1.5],
            apply_suffix: vec![4.0, 0.25],
            num_iterations: 10.0,
            dead: Some(vec![false, true, false, false]),
            env_fp: 0x0123_4567_89ab_cdef,
        });
        assert_eq!(round_trip(&rec), rec);
    }

    #[test]
    fn minimal_window_start_round_trips() {
        let rec = Record::WindowStart(WindowStart {
            window: 0,
            delta: None,
            loc_suffix: Vec::new(),
            size_suffix: Vec::new(),
            gather_suffix: Vec::new(),
            apply_suffix: Vec::new(),
            num_iterations: 1.0,
            dead: None,
            env_fp: 7,
        });
        assert_eq!(round_trip(&rec), rec);
    }

    #[test]
    fn batch_round_trips() {
        let rec = Record::Batch(Batch {
            window: 7,
            step: Batch::RECONCILE_STEP,
            moves: vec![(0, 3), (41, 0), (2, 7)],
        });
        assert_eq!(round_trip(&rec), rec);
    }

    #[test]
    fn commit_round_trips() {
        let rec = Record::Commit(Commit {
            window: 9,
            theta: 12,
            movement_cost_bits: 4.75f64.to_bits(),
            masters_fnv: 0xdead_beef,
        });
        assert_eq!(round_trip(&rec), rec);
    }

    #[test]
    fn truncation_never_panics() {
        for rec in [
            Record::WindowStart(WindowStart {
                window: 1,
                delta: Some(sample_delta()),
                loc_suffix: vec![1],
                size_suffix: vec![5],
                gather_suffix: vec![2.0],
                apply_suffix: vec![1.0],
                num_iterations: 5.0,
                dead: Some(vec![true; 4]),
                env_fp: 0xfeed,
            }),
            Record::Batch(Batch { window: 1, step: 0, moves: vec![(3, 1)] }),
            Record::Commit(Commit { window: 1, theta: 8, movement_cost_bits: 0, masters_fnv: 1 }),
        ] {
            let payload = rec.to_payload();
            for len in 0..payload.len() {
                assert!(
                    Record::from_payload(rec.kind(), &payload[..len], 0).is_err(),
                    "kind {} truncated to {len} decoded",
                    rec.kind()
                );
            }
            let mut long = payload.clone();
            long.push(0);
            assert!(Record::from_payload(rec.kind(), &long, 0).is_err());
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        match Record::from_payload(9, &[], 42) {
            Err(DurableError::UnknownRecordKind { lsn: 42, kind: 9 }) => {}
            other => panic!("expected UnknownRecordKind, got {other:?}"),
        }
    }

    #[test]
    fn bad_flag_bytes_rejected() {
        // Dead flag byte outside {0, 1}.
        let rec = Record::WindowStart(WindowStart {
            window: 0,
            delta: None,
            loc_suffix: Vec::new(),
            size_suffix: Vec::new(),
            gather_suffix: Vec::new(),
            apply_suffix: Vec::new(),
            num_iterations: 1.0,
            dead: Some(vec![true]),
            env_fp: 0,
        });
        let mut payload = rec.to_payload();
        // The dead-flag byte sits just before the trailing 8-byte env_fp.
        let flag_at = payload.len() - 9;
        payload[flag_at] = 2;
        assert!(Record::from_payload(KIND_WINDOW_START, &payload, 0).is_err());
    }
}
