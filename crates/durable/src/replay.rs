//! Crash recovery: snapshot + WAL replay through the live mutation paths.
//!
//! Replay reconstructs the pipeline state a crashed process held at its
//! last *committed* window boundary, **bit-exactly**. Three properties
//! make that possible:
//!
//! 1. **Same code paths.** Windows are re-derived through the identical
//!    calls the live trainer made — [`HybridState::resume_from_parts`]
//!    for incremental windows, [`HybridState::from_masters`] (with the
//!    same fault-reseed loop) for rebuilds — and every accepted migration
//!    is re-applied through [`HybridState::apply_move_with`] in the exact
//!    order the live run applied it. Floating-point accumulation is not
//!    associative, so order fidelity is what buys bit-equality.
//! 2. **Environment independence, enforced.** The only placement field
//!    whose evolution reads the (unlogged, possibly fault-mutated)
//!    environment is the movement-cost accumulator; the commit record
//!    pins its final bits and replay overrides it. Replay is therefore
//!    *computationally* environment-independent — but continuing a
//!    recovered pipeline against a different environment would silently
//!    re-price every objective, so snapshots and window starts carry an
//!    [`env_fingerprint`] and replay refuses a mismatch with
//!    [`DurableError::EnvMismatch`] instead of guessing.
//! 3. **Window transactions.** A window missing its commit record is
//!    rolled back entirely — the driver re-feeds those events — so replay
//!    never has to reproduce a half-trained window.
//!
//! Every committed window's master vector is cross-checked against the
//! FNV-1a hash its commit record pinned; disagreement is
//! [`DurableError::ReplayDiverged`], not silently-wrong state.

use geograph::GeoGraph;
use geopart::{HybridState, MoveScratch, PlacementState, TrafficProfile};
use geosim::CloudEnv;

use crate::error::{env_fingerprint, fnv1a, DurableError};
use crate::records::{Commit, Record, WindowStart, KIND_WINDOW_START};
use crate::snapshot::Snapshot;
use crate::wal::LoadedRecord;

/// Pipeline state reconstructed at the last committed window boundary.
#[derive(Debug)]
pub struct RecoveredPipeline {
    /// Geo-graph after all committed windows.
    pub geo: GeoGraph,
    /// Carried placement + theta; `None` only when no window ever
    /// committed (recovering a store that crashed before window 0 sealed).
    pub parts: Option<(PlacementState, usize)>,
    /// Index of the next window the driver should feed.
    pub next_window: u64,
    /// WAL position just past the last committed record.
    pub next_lsn: u64,
    /// Windows re-applied from the log (not counting those already folded
    /// into the snapshot).
    pub replayed_windows: u64,
    /// `true` when an uncommitted window start (and its batches) was
    /// found past the last commit and rolled back.
    pub rolled_back: bool,
    /// Records dropped by the rollback.
    pub dropped_records: u64,
    /// Trainer checkpoint blob from the snapshot — only still meaningful
    /// when no window was replayed past it, `None` otherwise.
    pub trainer: Option<Vec<u8>>,
}

impl RecoveredPipeline {
    /// Master locations at the recovery point (falls back to the vertex
    /// home locations when no window ever committed).
    pub fn masters(&self) -> &[geograph::DcId] {
        match &self.parts {
            Some((core, _)) => core.masters(),
            None => &self.geo.locations,
        }
    }
}

/// One fully-committed window transaction parsed out of the log.
struct WindowTxn {
    start: WindowStart,
    batches: Vec<(u64, crate::records::Batch)>,
    commit: Commit,
    commit_lsn: u64,
}

/// FNV-1a over a master vector (the hash commit records pin).
pub fn masters_fnv(masters: &[geograph::DcId]) -> u64 {
    fnv1a(masters)
}

/// Replays `records` on top of `snapshot`, returning the pipeline state
/// at the last committed window boundary. `env` must be the environment
/// the store was written under — its fingerprint is checked against the
/// snapshot and every window-start record.
pub fn replay(
    snapshot: Snapshot,
    records: &[LoadedRecord],
    env: &CloudEnv,
) -> Result<RecoveredPipeline, DurableError> {
    let offered_fp = env_fingerprint(env);
    if snapshot.env_fp != offered_fp {
        return Err(DurableError::EnvMismatch {
            stored: snapshot.env_fp,
            offered: offered_fp,
            at: "snapshot",
        });
    }

    // Position the log at the snapshot's resume point.
    let start = records.partition_point(|r| r.lsn < snapshot.lsn);
    if let Some(first) = records.get(start) {
        if first.lsn != snapshot.lsn {
            return Err(DurableError::RecordSequence {
                lsn: first.lsn,
                reason: "log starts past the snapshot's resume point",
            });
        }
    }
    let records = &records[start..];

    let mut geo = snapshot.geo;
    let mut parts = snapshot.placement;
    let mut profile = match &parts {
        Some((core, _)) => core.profile().clone(),
        None => TrafficProfile::uniform(0, 0.0),
    };
    let mut next_window = snapshot.window;
    let mut next_lsn = snapshot.lsn;
    let mut replayed_windows = 0u64;
    let mut scratch = MoveScratch::new();

    let mut pos = 0usize;
    let mut rolled_back = false;
    let mut dropped_records = 0u64;
    while pos < records.len() {
        match parse_window_txn(&records[pos..])? {
            ParsedTxn::Committed { txn, consumed } => {
                apply_window(
                    &txn,
                    &mut geo,
                    &mut parts,
                    &mut profile,
                    env,
                    next_window,
                    &mut scratch,
                )?;
                next_window += 1;
                next_lsn = txn.commit_lsn + 1;
                replayed_windows += 1;
                pos += consumed;
            }
            ParsedTxn::Uncommitted { consumed } => {
                rolled_back = true;
                dropped_records = consumed as u64;
                break;
            }
        }
    }

    let trainer = if replayed_windows == 0 { snapshot.trainer } else { None };
    Ok(RecoveredPipeline {
        geo,
        parts,
        next_window,
        next_lsn,
        replayed_windows,
        rolled_back,
        dropped_records,
        trainer,
    })
}

enum ParsedTxn {
    // Boxed: a WindowTxn carries a whole window's delta + batches.
    Committed { txn: Box<WindowTxn>, consumed: usize },
    Uncommitted { consumed: usize },
}

/// Parses one window transaction from the front of `records`. The whole
/// transaction is parsed before anything is applied, so a window whose
/// records are malformed is rejected atomically.
fn parse_window_txn(records: &[LoadedRecord]) -> Result<ParsedTxn, DurableError> {
    let first = &records[0];
    if first.kind != KIND_WINDOW_START {
        return Err(DurableError::RecordSequence {
            lsn: first.lsn,
            reason: "expected a window-start record",
        });
    }
    let start = match Record::from_payload(first.kind, &first.payload, first.lsn)? {
        Record::WindowStart(ws) => ws,
        _ => unreachable!("kind dispatch"),
    };
    let mut batches = Vec::new();
    for (i, rec) in records.iter().enumerate().skip(1) {
        match Record::from_payload(rec.kind, &rec.payload, rec.lsn)? {
            Record::WindowStart(_) => {
                return Err(DurableError::RecordSequence {
                    lsn: rec.lsn,
                    reason: "window started before the previous one committed",
                });
            }
            Record::Batch(b) => {
                if b.window != start.window {
                    return Err(DurableError::RecordSequence {
                        lsn: rec.lsn,
                        reason: "batch belongs to a different window",
                    });
                }
                batches.push((rec.lsn, b));
            }
            Record::Commit(c) => {
                if c.window != start.window {
                    return Err(DurableError::RecordSequence {
                        lsn: rec.lsn,
                        reason: "commit belongs to a different window",
                    });
                }
                return Ok(ParsedTxn::Committed {
                    txn: Box::new(WindowTxn { start, batches, commit: c, commit_lsn: rec.lsn }),
                    consumed: i + 1,
                });
            }
        }
    }
    // Log ended inside the transaction: the window never committed.
    Ok(ParsedTxn::Uncommitted { consumed: records.len() })
}

/// Applies one committed window to `(geo, parts, profile)` through the
/// live mutation paths.
#[allow(clippy::too_many_arguments)]
fn apply_window(
    txn: &WindowTxn,
    geo: &mut GeoGraph,
    parts: &mut Option<(PlacementState, usize)>,
    profile: &mut TrafficProfile,
    env: &CloudEnv,
    expected_window: u64,
    scratch: &mut MoveScratch,
) -> Result<(), DurableError> {
    let ws = &txn.start;
    if ws.window != expected_window {
        return Err(DurableError::RecordSequence {
            lsn: txn.commit_lsn,
            reason: "window index does not follow the previous commit",
        });
    }
    let offered_fp = env_fingerprint(env);
    if ws.env_fp != offered_fp {
        return Err(DurableError::EnvMismatch {
            stored: ws.env_fp,
            offered: offered_fp,
            at: "window-start",
        });
    }

    // 1. Evolve the geo-graph: delta on the structure, suffixes on the
    //    per-vertex arrays (prefixes are invariant across windows).
    let old_n = geo.num_vertices();
    let graph = match &ws.delta {
        Some(delta) => {
            if delta.old_num_vertices() != old_n {
                return Err(DurableError::RecordSequence {
                    lsn: txn.commit_lsn,
                    reason: "logged delta does not target the current graph",
                });
            }
            geo.graph.apply_delta(delta)
        }
        None => std::mem::replace(&mut geo.graph, geograph::Graph::from_edges(0, &[])),
    };
    let new_n = graph.num_vertices();
    let mut locations = std::mem::take(&mut geo.locations);
    let mut data_sizes = std::mem::take(&mut geo.data_sizes);
    locations.extend_from_slice(&ws.loc_suffix);
    data_sizes.extend_from_slice(&ws.size_suffix);
    if locations.len() != new_n
        || data_sizes.len() != new_n
        || locations.iter().any(|&d| (d as usize) >= geo.num_dcs)
    {
        return Err(DurableError::RecordSequence {
            lsn: txn.commit_lsn,
            reason: "location/size suffixes do not match the window's vertex count",
        });
    }
    let new_geo = GeoGraph::new(graph, locations, data_sizes, geo.num_dcs);
    profile.gather_bytes.extend_from_slice(&ws.gather_suffix);
    profile.apply_bytes.extend_from_slice(&ws.apply_suffix);
    if profile.len() != new_n {
        return Err(DurableError::RecordSequence {
            lsn: txn.commit_lsn,
            reason: "profile suffixes do not match the window's vertex count",
        });
    }

    // 2. Re-derive the window's starting state through the same path the
    //    live trainer chose. The discriminator mirrors `window_inner`'s
    //    `incremental` condition (the durable driver forbids the
    //    rebuild-per-window ablation, so it does not participate).
    let incremental = ws.delta.is_some() && ws.dead.is_none() && parts.is_some();
    let mut hybrid = if incremental {
        let (core, theta) = parts.take().expect("checked by `incremental`");
        if theta as u64 != txn.commit.theta {
            return Err(DurableError::ReplayDiverged { window: ws.window });
        }
        let delta = ws.delta.as_ref().expect("checked by `incremental`");
        let (state, _stats) =
            HybridState::resume_from_parts(core, theta, &new_geo, env, delta, profile)?;
        state
    } else {
        let mut masters = match parts.take() {
            Some((core, _)) => core.masters().to_vec(),
            None => Vec::new(),
        };
        masters.extend_from_slice(&new_geo.locations[masters.len()..]);
        if let Some(dead) = &ws.dead {
            if dead.len() != new_geo.num_dcs || dead.iter().all(|&d| d) {
                return Err(DurableError::RecordSequence {
                    lsn: txn.commit_lsn,
                    reason: "dead-DC flags malformed",
                });
            }
            // Mirror of the live fault-reseed loop in `window_inner`.
            let fallback = dead.iter().position(|&d| !d).expect("checked above") as geograph::DcId;
            for (v, m) in masters.iter_mut().enumerate() {
                if dead[*m as usize] {
                    let home = new_geo.locations[v];
                    *m = if dead[home as usize] { fallback } else { home };
                }
            }
        }
        let theta = txn.commit.theta as usize;
        HybridState::try_from_masters(
            &new_geo,
            env,
            masters,
            theta,
            profile.clone(),
            ws.num_iterations,
        )?
    };

    // 3. Re-apply every accepted migration in logged order.
    for (lsn, batch) in &txn.batches {
        for &(v, d) in &batch.moves {
            if (v as usize) >= new_n || (d as usize) >= new_geo.num_dcs {
                return Err(DurableError::RecordSequence {
                    lsn: *lsn,
                    reason: "logged move out of range",
                });
            }
            hybrid.apply_move_with(env, v, d, scratch);
        }
    }

    // 4. Pin the environment-dependent accumulator and verify the result.
    hybrid.override_movement_cost(f64::from_bits(txn.commit.movement_cost_bits));
    if fnv1a(hybrid.core().masters()) != txn.commit.masters_fnv {
        return Err(DurableError::ReplayDiverged { window: ws.window });
    }

    *parts = Some(hybrid.into_parts());
    *geo = new_geo;
    Ok(())
}
