//! Append-only write-ahead log: length-prefixed, checksummed records in
//! atomically-rotated segments.
//!
//! ## Layout
//!
//! The log lives under `<store>/wal/` as numbered segment files
//! `seg-<seq>.wal`. Each segment opens with a 32-byte header written
//! **atomically** (tmp + rename + directory fsync), so a legitimate crash
//! can never leave a header-less or half-headed segment behind — any
//! segment that fails header validation is corruption, not a crash
//! artifact:
//!
//! ```text
//! magic      4 B   "RLWL"
//! version    u32   1
//! seq        u64   segment sequence number (must match the file name)
//! first_lsn  u64   LSN of the first record in this segment
//! checksum   u64   FNV-1a over the 24 bytes above
//! ```
//!
//! Records follow back to back:
//!
//! ```text
//! len        u32   payload length
//! kind       u8    record kind tag (opaque to this module)
//! payload    len B
//! checksum   u64   FNV-1a over kind + payload
//! ```
//!
//! ## Torn-tail policy
//!
//! A crash mid-append leaves the *final* record of the *final* segment
//! shorter than its length prefix declares. Recovery drops those bytes
//! and reports them ([`WalReport::torn_tail_bytes`]) — that record was
//! never acknowledged as durable. Everything else is strict: a
//! short record in a non-final segment is [`DurableError::TruncatedSegment`],
//! a fully-present record with a bad checksum is
//! [`DurableError::CorruptRecord`], and segments whose sequence numbers or
//! first-LSNs do not chain are [`DurableError::LsnGap`]. Reopening always
//! rotates to a fresh segment, so new appends never extend a file whose
//! tail was dropped.
//!
//! ## Fsync discipline
//!
//! [`Wal::append`] buffers in the OS; [`Wal::sync`] is the durability
//! point (`fdatasync`). Callers group-commit: sync once after the records
//! that must become durable together. Rotation syncs the outgoing segment
//! before the new one is linked in.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::{fnv1a, DurableError};

/// Magic bytes opening every WAL segment.
pub const MAGIC: [u8; 4] = *b"RLWL";
/// Current segment format version.
pub const VERSION: u32 = 1;
/// Segment header size in bytes.
pub const HEADER_BYTES: u64 = 32;
/// Per-record framing overhead (length prefix + kind + checksum).
pub const RECORD_OVERHEAD: u64 = 13;
/// Default rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// One record scanned out of the log.
#[derive(Clone, Debug)]
pub struct LoadedRecord {
    /// Log sequence number (global record index, monotone across segments).
    pub lsn: u64,
    /// Kind tag, opaque at this layer.
    pub kind: u8,
    pub payload: Vec<u8>,
    /// Segment the record lives in.
    pub segment: u64,
    /// Byte offset just past this record within its segment file — the
    /// crash harness truncates here to simulate a kill at a record
    /// boundary.
    pub end_offset: u64,
}

/// What a log scan found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalReport {
    /// Segment files scanned.
    pub segments: usize,
    /// Complete, checksum-verified records.
    pub records: usize,
    /// Bytes of a torn final record dropped from the final segment.
    pub torn_tail_bytes: u64,
    /// Total bytes across all segment files.
    pub total_bytes: u64,
}

fn wal_dir(store_dir: &Path) -> PathBuf {
    store_dir.join("wal")
}

fn segment_name(seq: u64) -> String {
    format!("seg-{seq:08}.wal")
}

/// Sorted segment files of the store at `store_dir` (oldest first).
pub fn segment_paths(store_dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let dir = wal_dir(store_dir);
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

fn header_bytes(seq: u64, first_lsn: u64) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[..4].copy_from_slice(&MAGIC);
    h[4..8].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h[16..24].copy_from_slice(&first_lsn.to_le_bytes());
    let sum = fnv1a(&h[..24]);
    h[24..].copy_from_slice(&sum.to_le_bytes());
    h
}

fn fsync_dir(dir: &Path) -> Result<(), DurableError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// The appender half of the log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    seq: u64,
    next_lsn: u64,
    /// Bytes written into the current segment (header included).
    written: u64,
    /// Rotation threshold.
    segment_bytes: u64,
    /// Record bytes appended through this handle (bench accounting).
    appended_bytes: u64,
}

impl Wal {
    /// Creates a fresh log under `store_dir` (no segments may exist yet).
    pub fn create(store_dir: &Path) -> Result<Wal, DurableError> {
        let dir = wal_dir(store_dir);
        std::fs::create_dir_all(&dir)?;
        if !segment_paths(store_dir)?.is_empty() {
            return Err(DurableError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "WAL directory already holds segments",
            )));
        }
        let file = start_segment(&dir, 0, 0)?;
        Ok(Wal {
            dir,
            file,
            seq: 0,
            next_lsn: 0,
            written: HEADER_BYTES,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            appended_bytes: 0,
        })
    }

    /// Scans the existing log and returns an appender positioned after it.
    /// Always rotates to a fresh segment, so a dropped torn tail is never
    /// extended.
    pub fn open(store_dir: &Path) -> Result<(Vec<LoadedRecord>, WalReport, Wal), DurableError> {
        let (records, report) = load(store_dir)?;
        let dir = wal_dir(store_dir);
        std::fs::create_dir_all(&dir)?;
        let last_seq = segment_paths(store_dir)?.last().map(|&(seq, _)| seq);
        let seq = last_seq.map_or(0, |s| s + 1);
        let next_lsn = records.last().map_or(0, |r| r.lsn + 1);
        let file = start_segment(&dir, seq, next_lsn)?;
        let wal = Wal {
            dir,
            file,
            seq,
            next_lsn,
            written: HEADER_BYTES,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            appended_bytes: 0,
        };
        Ok((records, report, wal))
    }

    /// Overrides the rotation threshold (tests use tiny segments to
    /// exercise rotation; benches measure with the default).
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(HEADER_BYTES + RECORD_OVERHEAD);
        self
    }

    /// LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Record bytes appended through this handle (framing included).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Appends one record, rotating first if the current segment is full.
    /// Returns the record's LSN. Not yet durable — call [`Self::sync`].
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64, DurableError> {
        if self.written >= self.segment_bytes {
            self.rotate()?;
        }
        let mut buf = Vec::with_capacity(payload.len() + RECORD_OVERHEAD as usize);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.push(kind);
        buf.extend_from_slice(payload);
        let sum = fnv1a(&buf[4..]);
        buf.extend_from_slice(&sum.to_le_bytes());
        self.file.write_all(&buf)?;
        self.written += buf.len() as u64;
        self.appended_bytes += buf.len() as u64;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Makes every appended record durable (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), DurableError> {
        self.file.sync_data()?;
        self.seq += 1;
        self.file = start_segment(&self.dir, self.seq, self.next_lsn)?;
        self.written = HEADER_BYTES;
        Ok(())
    }

    /// Deletes whole segments whose records all predate `lsn` (oldest
    /// first, so a crash mid-prune leaves a contiguous suffix). Returns
    /// the number of segments removed. The segment containing `lsn` — and
    /// everything after it — stays.
    pub fn prune_below(&mut self, store_dir: &Path, lsn: u64) -> Result<usize, DurableError> {
        let paths = segment_paths(store_dir)?;
        // A segment is disposable iff its successor starts at or before
        // `lsn`: then every record it holds is < lsn.
        let mut first_lsns = Vec::with_capacity(paths.len());
        for &(seq, ref path) in &paths {
            let bytes = std::fs::read(path)?;
            first_lsns.push(parse_header(seq, &bytes)?);
        }
        let mut removed = 0;
        for i in 0..paths.len().saturating_sub(1) {
            if first_lsns[i + 1] <= lsn {
                std::fs::remove_file(&paths[i].1)?;
                removed += 1;
            } else {
                break;
            }
        }
        if removed > 0 {
            fsync_dir(&self.dir)?;
        }
        Ok(removed)
    }
}

/// Creates segment `seq` atomically and returns it opened for append.
fn start_segment(dir: &Path, seq: u64, first_lsn: u64) -> Result<File, DurableError> {
    let tmp = dir.join(format!("seg-{seq:08}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&header_bytes(seq, first_lsn))?;
        f.sync_all()?;
    }
    let path = dir.join(segment_name(seq));
    std::fs::rename(&tmp, &path)?;
    fsync_dir(dir)?;
    Ok(OpenOptions::new().append(true).open(&path)?)
}

/// Validates a segment header, returning its `first_lsn`.
fn parse_header(seq: u64, bytes: &[u8]) -> Result<u64, DurableError> {
    if bytes.is_empty() {
        return Err(DurableError::BadSegmentHeader { segment: seq, reason: "zero-length file" });
    }
    if (bytes.len() as u64) < HEADER_BYTES {
        return Err(DurableError::BadSegmentHeader { segment: seq, reason: "short header" });
    }
    if bytes[..4] != MAGIC {
        return Err(DurableError::BadSegmentHeader { segment: seq, reason: "bad magic" });
    }
    let stored = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    if stored != fnv1a(&bytes[..24]) {
        return Err(DurableError::BadSegmentHeader { segment: seq, reason: "header checksum" });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(DurableError::UnsupportedVersion { segment: seq, version });
    }
    let header_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_seq != seq {
        return Err(DurableError::BadSegmentHeader { segment: seq, reason: "sequence mismatch" });
    }
    Ok(u64::from_le_bytes(bytes[16..24].try_into().unwrap()))
}

/// Read-only scan of the whole log under `store_dir`.
pub fn load(store_dir: &Path) -> Result<(Vec<LoadedRecord>, WalReport), DurableError> {
    let paths = segment_paths(store_dir)?;
    let mut records = Vec::new();
    let mut report = WalReport { segments: paths.len(), ..WalReport::default() };
    let mut next_lsn: Option<u64> = None;
    for (i, &(seq, ref path)) in paths.iter().enumerate() {
        let last = i + 1 == paths.len();
        let bytes = std::fs::read(path)?;
        report.total_bytes += bytes.len() as u64;
        let first_lsn = parse_header(seq, &bytes)?;
        if let Some(expected) = next_lsn {
            if first_lsn != expected {
                return Err(DurableError::LsnGap {
                    segment: seq,
                    expected_lsn: expected,
                    found_lsn: first_lsn,
                });
            }
        }
        let mut lsn = first_lsn;
        let mut pos = HEADER_BYTES as usize;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            let declared = if remaining >= 4 {
                Some(u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize)
            } else {
                None
            };
            let total = declared.map(|len| len + RECORD_OVERHEAD as usize);
            if total.is_none_or(|t| t > remaining) {
                // Shorter than the frame declares: a torn append — only
                // legitimate at the very end of the log.
                if last {
                    report.torn_tail_bytes = remaining as u64;
                    break;
                }
                return Err(DurableError::TruncatedSegment { segment: seq });
            }
            let len = declared.unwrap();
            let body = &bytes[pos + 4..pos + 5 + len];
            let stored =
                u64::from_le_bytes(bytes[pos + 5 + len..pos + 13 + len].try_into().unwrap());
            if stored != fnv1a(body) {
                return Err(DurableError::CorruptRecord { segment: seq, lsn });
            }
            pos += total.unwrap();
            records.push(LoadedRecord {
                lsn,
                kind: body[0],
                payload: body[1..].to_vec(),
                segment: seq,
                end_offset: pos as u64,
            });
            lsn += 1;
        }
        next_lsn = Some(lsn);
        report.records = records.len();
    }
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlcut_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_load_round_trip() {
        let dir = tmp_dir("round_trip");
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..10u8 {
            let lsn = wal.append(i % 3, &[i; 5]).unwrap();
            assert_eq!(lsn, i as u64);
        }
        wal.sync().unwrap();
        let (records, report) = load(&dir).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(report.records, 10);
        assert_eq!(report.torn_tail_bytes, 0);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64);
            assert_eq!(r.kind, (i % 3) as u8);
            assert_eq!(r.payload, vec![i as u8; 5]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_chains_segments() {
        let dir = tmp_dir("rotation");
        let mut wal = Wal::create(&dir).unwrap().with_segment_bytes(64);
        for i in 0..20u8 {
            wal.append(1, &[i; 16]).unwrap();
        }
        wal.sync().unwrap();
        let paths = segment_paths(&dir).unwrap();
        assert!(paths.len() > 1, "64-byte segments must rotate");
        let (records, _) = load(&dir).unwrap();
        assert_eq!(records.len(), 20);
        assert_eq!(records.last().unwrap().lsn, 19);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_lsns_in_fresh_segment() {
        let dir = tmp_dir("reopen");
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (records, _, mut wal) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(wal.next_lsn(), 2);
        assert_eq!(wal.append(2, b"c").unwrap(), 2);
        wal.sync().unwrap();
        let (records, _) = load(&dir).unwrap();
        assert_eq!(records.len(), 3);
        assert!(records[2].segment > records[1].segment, "reopen must rotate");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_dropped_and_reported() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, &[1; 32]).unwrap();
        wal.append(1, &[2; 32]).unwrap();
        wal.sync().unwrap();
        let (_, path) = segment_paths(&dir).unwrap().pop().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut the last record short at every possible point.
        let first_end = HEADER_BYTES as usize + 32 + RECORD_OVERHEAD as usize;
        for cut in first_end..full.len() - 1 {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (records, report) = load(&dir).unwrap();
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(report.torn_tail_bytes, (cut - first_end) as u64);
        }
        std::fs::write(&path, &full).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_are_caught() {
        let dir = tmp_dir("flips");
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, &[7; 16]).unwrap();
        wal.sync().unwrap();
        let (_, path) = segment_paths(&dir).unwrap().pop().unwrap();
        let full = std::fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            // A flip in the length prefix can mimic a torn tail; any
            // other flip must surface as a typed error.
            if let Ok((records, report)) = load(&dir) {
                assert!(
                    (HEADER_BYTES as usize..HEADER_BYTES as usize + 4).contains(&i),
                    "flip at byte {i} loaded silently"
                );
                assert_eq!(records.len(), 0);
                assert!(report.torn_tail_bytes > 0);
            }
        }
        std::fs::write(&path, &full).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_length_segment_rejected() {
        let dir = tmp_dir("zero");
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, b"x").unwrap();
        wal.sync().unwrap();
        let (_, path) = segment_paths(&dir).unwrap().pop().unwrap();
        std::fs::write(&path, b"").unwrap();
        match load(&dir) {
            Err(DurableError::BadSegmentHeader { reason, .. }) => {
                assert_eq!(reason, "zero-length file")
            }
            other => panic!("zero-length segment must be rejected, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_interior_segment_is_a_gap() {
        let dir = tmp_dir("gap");
        let mut wal = Wal::create(&dir).unwrap().with_segment_bytes(64);
        for i in 0..30u8 {
            wal.append(1, &[i; 16]).unwrap();
        }
        wal.sync().unwrap();
        let paths = segment_paths(&dir).unwrap();
        assert!(paths.len() >= 3);
        std::fs::remove_file(&paths[1].1).unwrap();
        assert!(matches!(load(&dir), Err(DurableError::LsnGap { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_interior_segment_rejected() {
        let dir = tmp_dir("interior");
        let mut wal = Wal::create(&dir).unwrap().with_segment_bytes(64);
        for i in 0..30u8 {
            wal.append(1, &[i; 16]).unwrap();
        }
        wal.sync().unwrap();
        let paths = segment_paths(&dir).unwrap();
        assert!(paths.len() >= 2);
        let first = std::fs::read(&paths[0].1).unwrap();
        std::fs::write(&paths[0].1, &first[..first.len() - 5]).unwrap();
        assert!(matches!(load(&dir), Err(DurableError::TruncatedSegment { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_live_suffix() {
        let dir = tmp_dir("prune");
        let mut wal = Wal::create(&dir).unwrap().with_segment_bytes(64);
        for i in 0..30u8 {
            wal.append(1, &[i; 16]).unwrap();
        }
        wal.sync().unwrap();
        let before = segment_paths(&dir).unwrap().len();
        assert!(before >= 3);
        let removed = wal.prune_below(&dir, 15).unwrap();
        assert!(removed > 0);
        let (records, _) = load(&dir).unwrap();
        // Every record from 15 on must survive (earlier ones may too —
        // pruning is whole-segment).
        assert!(records.iter().any(|r| r.lsn == 15));
        assert_eq!(records.last().unwrap().lsn, 29);
        assert!(records[0].lsn <= 15);
        std::fs::remove_dir_all(&dir).ok();
    }
}
