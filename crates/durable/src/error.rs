//! Typed failures of the durability layer.
//!
//! Every malformed byte stream — truncated, bit-flipped, zero-length,
//! out-of-sequence — must surface as a [`DurableError`] variant, never as
//! a panic and never as a silently half-loaded state. The only tolerated
//! anomaly is a *torn tail*: the final record of the final WAL segment cut
//! short by a crash mid-append, which recovery drops and reports.

use geograph::wire::WireError;
use geopart::PlanError;
use geosim::CloudEnv;

/// Why a durable load, append, or replay failed.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A WAL segment is missing its header, carries the wrong magic, or
    /// its header checksum does not match. Segment headers are created
    /// atomically (tmp + rename), so a legitimate crash cannot produce
    /// one — this is corruption or foreign data.
    BadSegmentHeader { segment: u64, reason: &'static str },
    /// The segment format version is not supported.
    UnsupportedVersion { segment: u64, version: u32 },
    /// A fully-present record's checksum does not match its payload — a
    /// bit flip, not a torn append (torn tails are shorter than their
    /// length prefix declares and are dropped, not errored).
    CorruptRecord { segment: u64, lsn: u64 },
    /// A non-final segment ended mid-record. Only the final segment may
    /// carry a torn tail; an interior one was truncated after the fact.
    TruncatedSegment { segment: u64 },
    /// Segment sequence numbers or first-LSNs do not chain: a segment in
    /// the middle of the log is missing.
    LsnGap { segment: u64, expected_lsn: u64, found_lsn: u64 },
    /// No snapshot file in the directory decoded cleanly. The store
    /// writes a genesis snapshot on creation, so an empty or all-corrupt
    /// snapshot set means the directory is not a usable store.
    NoValidSnapshot { tried: usize },
    /// A record or snapshot payload failed to decode.
    Wire(WireError),
    /// The placement layer rejected replayed state (e.g. a logged delta
    /// that does not line up with the snapshot).
    Plan(PlanError),
    /// Replayed records do not form well-formed window transactions
    /// (e.g. a batch without a window start, or a window index jump).
    RecordSequence { lsn: u64, reason: &'static str },
    /// A record kind byte this version does not know.
    UnknownRecordKind { lsn: u64, kind: u8 },
    /// Replay finished a window with state that contradicts what the
    /// commit record pinned (masters hash mismatch) — the log and the
    /// apply paths disagree, so the recovered state cannot be trusted.
    ReplayDiverged { window: u64 },
    /// The environment offered at recovery is not the environment the
    /// store was written under (snapshot or window-start fingerprint
    /// mismatch). Replay is computationally environment-independent, but
    /// *continuing* against a different environment silently re-prices
    /// every objective — so a mismatch is refused, not replayed onto.
    EnvMismatch { stored: u64, offered: u64, at: &'static str },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable I/O error: {e}"),
            DurableError::BadSegmentHeader { segment, reason } => {
                write!(f, "WAL segment {segment}: bad header ({reason})")
            }
            DurableError::UnsupportedVersion { segment, version } => {
                write!(f, "WAL segment {segment}: unsupported format version {version}")
            }
            DurableError::CorruptRecord { segment, lsn } => {
                write!(f, "WAL segment {segment}: record {lsn} failed its checksum")
            }
            DurableError::TruncatedSegment { segment } => {
                write!(f, "WAL segment {segment}: truncated mid-record (not the final segment)")
            }
            DurableError::LsnGap { segment, expected_lsn, found_lsn } => write!(
                f,
                "WAL segment {segment}: starts at record {found_lsn}, expected {expected_lsn} \
                 — a segment is missing"
            ),
            DurableError::NoValidSnapshot { tried } => {
                write!(f, "no valid snapshot found ({tried} candidate files tried)")
            }
            DurableError::Wire(e) => write!(f, "durable payload malformed: {e}"),
            DurableError::Plan(e) => write!(f, "replayed state rejected: {e}"),
            DurableError::RecordSequence { lsn, reason } => {
                write!(f, "WAL record {lsn}: broken window transaction ({reason})")
            }
            DurableError::UnknownRecordKind { lsn, kind } => {
                write!(f, "WAL record {lsn}: unknown record kind {kind:#x}")
            }
            DurableError::ReplayDiverged { window } => write!(
                f,
                "replay of window {window} produced masters that contradict the commit record"
            ),
            DurableError::EnvMismatch { stored, offered, at } => write!(
                f,
                "environment mismatch at {at}: store written under fingerprint {stored:#018x}, \
                 recovery offered {offered:#018x} — pass the environment the store was created with"
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Wire(e) => Some(e),
            DurableError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<WireError> for DurableError {
    fn from(e: WireError) -> Self {
        DurableError::Wire(e)
    }
}

impl From<PlanError> for DurableError {
    fn from(e: PlanError) -> Self {
        DurableError::Plan(e)
    }
}

/// FNV-1a 64-bit over a byte slice — the workspace's dependency-free
/// integrity check (same constants as the trainer checkpoint format).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Identity fingerprint of a cloud environment: FNV-1a over the DC count
/// and every DC's name, uplink/downlink bits, and price bits. Stamped
/// into snapshots and window-start records so recovery can refuse to
/// replay a store against an environment it was not written under
/// ([`DurableError::EnvMismatch`]).
pub fn env_fingerprint(env: &CloudEnv) -> u64 {
    let mut bytes = Vec::with_capacity(8 + env.num_dcs() * 40);
    bytes.extend_from_slice(&(env.num_dcs() as u64).to_le_bytes());
    for dc in env.dcs() {
        bytes.extend_from_slice(&(dc.name.len() as u64).to_le_bytes());
        bytes.extend_from_slice(dc.name.as_bytes());
        bytes.extend_from_slice(&dc.uplink_bps.to_bits().to_le_bytes());
        bytes.extend_from_slice(&dc.downlink_bps.to_bits().to_le_bytes());
        bytes.extend_from_slice(&dc.upload_price_per_byte.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}
