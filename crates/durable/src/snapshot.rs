//! Compact pipeline snapshots: `(GeoGraph, PlacementState, trainer blob)`
//! at a WAL position.
//!
//! A snapshot pins everything replay would otherwise have to reconstruct
//! from genesis: the graph as of some committed window, the verbatim
//! placement accumulators (via [`geopart::snapshot`], every `f64` as raw
//! bits), the carried theta, and optionally an opaque trainer checkpoint
//! blob (the existing `TrainerCheckpoint` wire format — this layer stores
//! the bytes, the trainer validates them). Recovery = newest decodable
//! snapshot + WAL replay from its [`Snapshot::lsn`].
//!
//! Files are `snap-<lsn>.snap` under `<store>/snap/`, written atomically
//! (tmp + rename + directory fsync) with an FNV-1a trailer over the whole
//! payload. [`load_latest`] walks candidates newest-first and *skips*
//! corrupt ones (reporting how many) — a torn or bit-flipped snapshot
//! costs replay time, never correctness. The store writes a genesis
//! snapshot (window 0, no placement) at creation, so an empty snapshot
//! directory is always [`DurableError::NoValidSnapshot`], distinguishing
//! "new store" from "store with its snapshots destroyed".

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use geograph::wire::{self, Reader, WireError};
use geograph::GeoGraph;
use geopart::snapshot::{decode_placement, encode_placement};
use geopart::PlacementState;

use crate::error::{fnv1a, DurableError};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"RLSN";
/// Current snapshot format version. v2 added the environment fingerprint
/// (`env_fp`) so recovery refuses a mismatched environment.
pub const VERSION: u32 = 2;

/// Pipeline state at a WAL position.
#[derive(Debug)]
pub struct Snapshot {
    /// First WAL record NOT reflected in this snapshot — replay resumes
    /// here.
    pub lsn: u64,
    /// Next window index (windows `0..window` are folded in).
    pub window: u64,
    /// [`crate::error::env_fingerprint`] of the environment the pipeline
    /// ran under; recovery cross-checks it against the offered one.
    pub env_fp: u64,
    /// The geo-graph as of `window` windows applied.
    pub geo: GeoGraph,
    /// Carried placement + theta; `None` at genesis (no window committed
    /// yet — the first `WindowStart` builds placement from scratch).
    pub placement: Option<(PlacementState, usize)>,
    /// Opaque trainer checkpoint bytes (`TrainerCheckpoint` format),
    /// when the caller chose to persist mid-stream trainer state.
    pub trainer: Option<Vec<u8>>,
}

fn snap_dir(store_dir: &Path) -> PathBuf {
    store_dir.join("snap")
}

fn snap_name(lsn: u64) -> String {
    format!("snap-{lsn:020}.snap")
}

impl Snapshot {
    /// Serializes the snapshot, checksum trailer included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.window.to_le_bytes());
        out.extend_from_slice(&self.env_fp.to_le_bytes());
        wire::encode_geo(&self.geo, &mut out);
        match &self.placement {
            Some((state, theta)) => {
                out.push(1);
                out.extend_from_slice(&(*theta as u64).to_le_bytes());
                encode_placement(state, &mut out);
            }
            None => out.push(0),
        }
        match &self.trainer {
            Some(blob) => {
                out.push(1);
                out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
                out.extend_from_slice(blob);
            }
            None => out.push(0),
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes and validates a snapshot blob (checksum first, then
    /// structure, then cross-field consistency).
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, DurableError> {
        if bytes.len() < MAGIC.len() + 12 {
            return Err(WireError::Truncated.into());
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        if stored != fnv1a(payload) {
            return Err(WireError::Malformed("snapshot checksum mismatch").into());
        }
        let mut r = Reader::new(payload);
        if r.take(4)? != MAGIC {
            return Err(WireError::Malformed("snapshot magic").into());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(DurableError::UnsupportedVersion { segment: 0, version });
        }
        let lsn = r.u64()?;
        let window = r.u64()?;
        let env_fp = r.u64()?;
        let geo = wire::decode_geo(&mut r)?;
        let placement = match r.u8()? {
            0 => None,
            1 => {
                let theta = r.u64()? as usize;
                let state = decode_placement(&mut r)?;
                if state.num_vertices() != geo.num_vertices() || state.num_dcs() != geo.num_dcs {
                    return Err(WireError::Malformed("placement does not match geo").into());
                }
                Some((state, theta))
            }
            _ => return Err(WireError::Malformed("placement presence flag").into()),
        };
        let trainer = match r.u8()? {
            0 => None,
            1 => {
                let n = r.len(1)?;
                Some(r.take(n)?.to_vec())
            }
            _ => return Err(WireError::Malformed("trainer presence flag").into()),
        };
        r.finish()?;
        Ok(Snapshot { lsn, window, env_fp, geo, placement, trainer })
    }
}

/// Writes `snapshot` atomically under `store_dir` and returns its path
/// and encoded size.
pub fn write(store_dir: &Path, snapshot: &Snapshot) -> Result<(PathBuf, u64), DurableError> {
    let dir = snap_dir(store_dir);
    std::fs::create_dir_all(&dir)?;
    let bytes = snapshot.to_bytes();
    let tmp = dir.join(format!("{}.tmp", snap_name(snapshot.lsn)));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    let path = dir.join(snap_name(snapshot.lsn));
    std::fs::rename(&tmp, &path)?;
    File::open(&dir)?.sync_all()?;
    Ok((path, bytes.len() as u64))
}

/// Sorted snapshot files (oldest first) keyed by their LSN.
pub fn snapshot_paths(store_dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let dir = snap_dir(store_dir);
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(lsn) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

/// Loads the newest decodable snapshot, skipping corrupt candidates.
/// Returns the snapshot and how many candidates were skipped.
pub fn load_latest(store_dir: &Path) -> Result<(Snapshot, usize), DurableError> {
    let paths = snapshot_paths(store_dir)?;
    let tried = paths.len();
    let mut skipped = 0;
    for (_, path) in paths.into_iter().rev() {
        match std::fs::read(&path)
            .map_err(DurableError::from)
            .and_then(|b| Snapshot::from_bytes(&b))
        {
            Ok(snap) => return Ok((snap, skipped)),
            Err(_) => skipped += 1,
        }
    }
    Err(DurableError::NoValidSnapshot { tried })
}

/// Deletes all snapshots except the newest `keep` (by LSN). Returns how
/// many were removed.
pub fn prune(store_dir: &Path, keep: usize) -> Result<usize, DurableError> {
    let paths = snapshot_paths(store_dir)?;
    let mut removed = 0;
    if paths.len() > keep {
        for (_, path) in &paths[..paths.len() - keep] {
            std::fs::remove_file(path)?;
            removed += 1;
        }
        File::open(snap_dir(store_dir))?.sync_all()?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::{GraphBuilder, LocalityConfig};
    use geopart::{HybridState, TrafficProfile};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlcut_snap_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        let mut b = GraphBuilder::new(24);
        for i in 0..23u32 {
            b.add_edges([(i, i + 1), (i, (i * 5 + 2) % 24)]);
        }
        let geo = GeoGraph::from_graph(b.build(), &LocalityConfig::uniform(8, 13));
        let env = geosim::regions::ec2_eight_regions();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let hybrid =
            HybridState::try_from_masters(&geo, &env, geo.locations.clone(), 3, profile, 10.0)
                .unwrap();
        let (state, theta) = hybrid.into_parts();
        Snapshot {
            lsn: 17,
            window: 4,
            env_fp: crate::error::env_fingerprint(&env),
            geo,
            placement: Some((state, theta)),
            trainer: Some(vec![1, 2, 3, 4, 5]),
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snap = sample();
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.lsn, snap.lsn);
        assert_eq!(restored.window, snap.window);
        assert_eq!(restored.env_fp, snap.env_fp);
        assert_eq!(restored.geo.locations, snap.geo.locations);
        assert_eq!(restored.trainer, snap.trainer);
        let (a, ta) = snap.placement.as_ref().unwrap();
        let (b, tb) = restored.placement.as_ref().unwrap();
        assert_eq!(ta, tb);
        assert_eq!(a.masters(), b.masters());
        assert_eq!(a.movement_cost().to_bits(), b.movement_cost().to_bits());
    }

    #[test]
    fn genesis_round_trips() {
        let mut snap = sample();
        snap.placement = None;
        snap.trainer = None;
        snap.lsn = 0;
        snap.window = 0;
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(restored.placement.is_none());
        assert_eq!(restored.window, 0);
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for len in (0..bytes.len()).step_by(131) {
            assert!(Snapshot::from_bytes(&bytes[..len]).is_err(), "len {len} decoded");
        }
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Snapshot::from_bytes(&bad).is_err(), "flip at {i} decoded");
        }
    }

    #[test]
    fn load_latest_skips_corrupt_and_falls_back() {
        let dir = tmp_dir("fallback");
        let mut old = sample();
        old.lsn = 5;
        write(&dir, &old).unwrap();
        let mut newer = sample();
        newer.lsn = 11;
        let (path, _) = write(&dir, &newer).unwrap();
        // Corrupt the newest file; recovery must fall back to lsn 5.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (snap, skipped) = load_latest(&dir).unwrap();
        assert_eq!(snap.lsn, 5);
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_is_no_valid_snapshot() {
        let dir = tmp_dir("empty");
        assert!(matches!(load_latest(&dir), Err(DurableError::NoValidSnapshot { tried: 0 })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        for lsn in [3, 9, 20] {
            let mut s = sample();
            s.lsn = lsn;
            write(&dir, &s).unwrap();
        }
        assert_eq!(prune(&dir, 1).unwrap(), 2);
        let (snap, _) = load_latest(&dir).unwrap();
        assert_eq!(snap.lsn, 20);
        std::fs::remove_dir_all(&dir).ok();
    }
}
