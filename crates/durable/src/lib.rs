//! # geodur — durable state for the adaptive-partitioning pipeline
//!
//! Makes the dynamic-window trainer survive process death *bit-exactly*:
//!
//! * [`wal`] — append-only log of everything that mutates pipeline state:
//!   window openings (graph deltas, placement/profile suffixes, fault
//!   flags), per-step accepted migration batches, and window commits.
//!   Length-prefixed, checksum-per-record, atomically-rotated segments.
//! * [`snapshot`] — periodic compact snapshots of `(GeoGraph,
//!   PlacementState, trainer blob)` so recovery replays a bounded log
//!   suffix instead of history from genesis.
//! * [`records`] — the typed WAL record kinds and their wire codecs.
//! * [`replay`] — crash recovery: latest valid snapshot + WAL replay
//!   through the *same* placement mutation paths the live trainer uses
//!   (`resume_from_parts` / `apply_move_with`), so recovered `f64`
//!   accumulators match the live run bit for bit.
//! * [`store`] — the [`store::DurableStore`] facade tying the pieces
//!   together: create/open a durable directory, append window
//!   transactions, cut snapshots, prune the log.
//!
//! ## Window-transactional semantics
//!
//! Each dynamic window is one WAL transaction: `WindowStart` is logged and
//! synced *before* training (the paper's pipeline decides placement before
//! the window's jobs run, so the inputs are known up front), then the
//! accepted migration batches and a `Commit` are appended and synced
//! together after the window. Recovery rolls back any window whose start
//! lacks a commit — the driver re-feeds that window's events, exactly as a
//! database client retries an uncommitted transaction.

pub mod error;
pub mod records;
pub mod replay;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::{env_fingerprint, fnv1a, DurableError};
pub use records::{Batch, Commit, Record, WindowStart};
pub use replay::{masters_fnv, replay, RecoveredPipeline};
pub use snapshot::Snapshot;
pub use store::{DurableStore, RecoveryReport};
pub use wal::{LoadedRecord, Wal, WalReport};
