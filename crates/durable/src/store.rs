//! The durable-store facade: one directory holding a WAL and snapshots,
//! with the fsync discipline of the window-transaction protocol baked in.
//!
//! ```text
//! <dir>/wal/seg-*.wal     append-only record log
//! <dir>/snap/snap-*.snap  compact pipeline snapshots
//! ```
//!
//! Per window the driver calls [`DurableStore::log_window_start`]
//! (append **and sync** — the window's inputs must be durable before any
//! training work they gate), then [`DurableStore::log_batch`] per
//! training step (append only), then [`DurableStore::log_commit`]
//! (append and sync — one group commit makes the batches and the seal
//! durable together). Periodically [`DurableStore::write_snapshot`] cuts
//! a snapshot at the committed boundary and prunes the log behind it.

use std::path::{Path, PathBuf};

use geograph::GeoGraph;
use geosim::CloudEnv;

use crate::error::{env_fingerprint, DurableError};
use crate::records::{Batch, Commit, Record, WindowStart};
use crate::replay::{replay, RecoveredPipeline};
use crate::snapshot::{self, Snapshot};
use crate::wal::{Wal, WalReport};

/// How many snapshots [`DurableStore::write_snapshot`] retains. Two, so
/// a snapshot torn by a crash mid-write always leaves a decodable
/// predecessor (plus the log suffix back to it).
pub const SNAPSHOTS_KEPT: usize = 2;

/// What [`DurableStore::recover`] found on disk.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    pub wal: WalReport,
    /// Corrupt snapshot candidates skipped before one decoded.
    pub snapshots_skipped: usize,
}

/// An open durable directory: the appender half plus snapshot plumbing.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
}

impl DurableStore {
    /// Initializes `dir` as a durable store for a pipeline starting from
    /// `geo` under `env`: fresh WAL plus a genesis snapshot (window 0, no
    /// placement) stamped with the environment fingerprint, so recovery
    /// always finds *some* valid snapshot and an empty snapshot directory
    /// is unambiguously an error.
    pub fn create(
        dir: &Path,
        geo: &GeoGraph,
        env: &CloudEnv,
    ) -> Result<DurableStore, DurableError> {
        std::fs::create_dir_all(dir)?;
        let wal = Wal::create(dir)?;
        let genesis = Snapshot {
            lsn: 0,
            window: 0,
            env_fp: env_fingerprint(env),
            geo: geo.clone(),
            placement: None,
            trainer: None,
        };
        snapshot::write(dir, &genesis)?;
        Ok(DurableStore { dir: dir.to_path_buf(), wal })
    }

    /// Recovers the pipeline state from `dir` (latest valid snapshot +
    /// WAL replay) and returns the store positioned for new appends.
    /// `env` must fingerprint-match the environment the store was written
    /// under ([`DurableError::EnvMismatch`] otherwise).
    pub fn recover(
        dir: &Path,
        env: &CloudEnv,
    ) -> Result<(RecoveredPipeline, RecoveryReport, DurableStore), DurableError> {
        let (snap, snapshots_skipped) = snapshot::load_latest(dir)?;
        let (records, wal_report, wal) = Wal::open(dir)?;
        let recovered = replay(snap, &records, env)?;
        let report = RecoveryReport { wal: wal_report, snapshots_skipped };
        Ok((recovered, report, DurableStore { dir: dir.to_path_buf(), wal }))
    }

    /// Appends and **syncs** a window-start record. Returns its LSN.
    pub fn log_window_start(&mut self, ws: &WindowStart) -> Result<u64, DurableError> {
        let rec = Record::WindowStart(ws.clone());
        let lsn = self.wal.append(rec.kind(), &rec.to_payload())?;
        self.wal.sync()?;
        Ok(lsn)
    }

    /// Appends a migration batch (no sync — covered by the commit's).
    pub fn log_batch(&mut self, batch: &Batch) -> Result<u64, DurableError> {
        let rec = Record::Batch(batch.clone());
        self.wal.append(rec.kind(), &rec.to_payload())
    }

    /// Appends and syncs a commit record: the group commit that makes the
    /// window's batches and seal durable together.
    pub fn log_commit(&mut self, commit: &Commit) -> Result<u64, DurableError> {
        let rec = Record::Commit(*commit);
        let lsn = self.wal.append(rec.kind(), &rec.to_payload())?;
        self.wal.sync()?;
        Ok(lsn)
    }

    /// Writes a snapshot at the current committed boundary, prunes older
    /// snapshots (keeping [`SNAPSHOTS_KEPT`]) and WAL segments wholly
    /// behind the *retained* snapshots. Returns the snapshot's size.
    pub fn write_snapshot(&mut self, snap: &Snapshot) -> Result<u64, DurableError> {
        let (_, bytes) = snapshot::write(&self.dir, snap)?;
        snapshot::prune(&self.dir, SNAPSHOTS_KEPT)?;
        // The oldest retained snapshot bounds how far back replay may
        // need to reach.
        if let Some(&(oldest_lsn, _)) = snapshot::snapshot_paths(&self.dir)?.first() {
            self.wal.prune_below(&self.dir, oldest_lsn)?;
        }
        Ok(bytes)
    }

    /// LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Record bytes appended through this handle (framing included).
    pub fn appended_bytes(&self) -> u64 {
        self.wal.appended_bytes()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::masters_fnv;
    use geograph::dynamic::{EdgeEvent, EventKind};
    use geograph::{GraphBuilder, GraphDelta, LocalityConfig};
    use geopart::{HybridState, MoveScratch, TrafficProfile};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlcut_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn build_geo(n: usize) -> GeoGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n as u32 - 1 {
            b.add_edges([(i, i + 1), (i, (i * 7 + 3) % n as u32)]);
        }
        GeoGraph::from_graph(b.build(), &LocalityConfig::uniform(8, 17))
    }

    fn assert_parts_bit_identical(
        a: &(geopart::PlacementState, usize),
        b: &(geopart::PlacementState, usize),
    ) {
        assert_eq!(a.1, b.1, "theta");
        assert_eq!(a.0.masters(), b.0.masters());
        assert_eq!(a.0.movement_cost().to_bits(), b.0.movement_cost().to_bits());
        for d in 0..a.0.num_dcs() as geograph::DcId {
            assert_eq!(a.0.gather_loads().up(d).to_bits(), b.0.gather_loads().up(d).to_bits());
            assert_eq!(a.0.gather_loads().down(d).to_bits(), b.0.gather_loads().down(d).to_bits());
            assert_eq!(a.0.apply_loads().up(d).to_bits(), b.0.apply_loads().up(d).to_bits());
            assert_eq!(a.0.apply_loads().down(d).to_bits(), b.0.apply_loads().down(d).to_bits());
        }
    }

    /// Drives two "live" windows by hand — a genesis rebuild and an
    /// incremental delta window, each with real `apply_move_with` calls —
    /// logging exactly what the trainer hooks log, then recovers and
    /// demands bit-identical placement state.
    #[test]
    fn two_window_log_recovers_bit_exactly() {
        let dir = tmp_dir("two_window");
        let env = geosim::regions::ec2_eight_regions();
        let geo0 = build_geo(40);
        let n0 = geo0.num_vertices();
        let mut store = DurableStore::create(&dir, &geo0, &env).unwrap();
        let mut scratch = MoveScratch::new();

        // Window 0: rebuild from home locations, three accepted moves.
        let profile0 = TrafficProfile::uniform(n0, 8.0);
        store
            .log_window_start(&WindowStart {
                window: 0,
                delta: None,
                loc_suffix: Vec::new(),
                size_suffix: Vec::new(),
                gather_suffix: profile0.gather_bytes.clone(),
                apply_suffix: profile0.apply_bytes.clone(),
                num_iterations: 10.0,
                dead: None,
                env_fp: env_fingerprint(&env),
            })
            .unwrap();
        let theta0 = 4usize;
        let mut live = HybridState::from_masters(
            &geo0,
            &env,
            geo0.locations.clone(),
            theta0,
            profile0.clone(),
            10.0,
        );
        let moves0 = vec![(3u32, 5u8), (17, 0), (3, 2)];
        for &(v, d) in &moves0 {
            live.apply_move_with(&env, v, d, &mut scratch);
        }
        store.log_batch(&Batch { window: 0, step: 0, moves: moves0 }).unwrap();
        store
            .log_commit(&Commit {
                window: 0,
                theta: theta0 as u64,
                movement_cost_bits: live.core().movement_cost().to_bits(),
                masters_fnv: masters_fnv(live.core().masters()),
            })
            .unwrap();
        let parts0 = live.into_parts();

        // Window 1: delta adds two vertices and some edges; incremental.
        let events = vec![
            EdgeEvent { src: 2, dst: 41, timestamp_ms: 0, kind: EventKind::Insert },
            EdgeEvent { src: 41, dst: 7, timestamp_ms: 1, kind: EventKind::Insert },
            EdgeEvent { src: 0, dst: 1, timestamp_ms: 2, kind: EventKind::Delete },
            EdgeEvent { src: 40, dst: 3, timestamp_ms: 3, kind: EventKind::Insert },
        ];
        let delta = GraphDelta::from_events(&geo0.graph, &events);
        let graph1 = geo0.graph.apply_delta(&delta);
        let n1 = graph1.num_vertices();
        let mut locations = geo0.locations.clone();
        let mut sizes = geo0.data_sizes.clone();
        let loc_suffix: Vec<u8> = vec![1, 6];
        let size_suffix: Vec<u64> = vec![64, 96];
        locations.extend_from_slice(&loc_suffix);
        sizes.extend_from_slice(&size_suffix);
        let geo1 = GeoGraph::new(graph1, locations, sizes, geo0.num_dcs);
        let mut profile1 = profile0.clone();
        profile1.gather_bytes.extend_from_slice(&[3.0, 5.0]);
        profile1.apply_bytes.extend_from_slice(&[1.0, 2.0]);

        store
            .log_window_start(&WindowStart {
                window: 1,
                delta: Some(delta.clone()),
                loc_suffix,
                size_suffix,
                gather_suffix: vec![3.0, 5.0],
                apply_suffix: vec![1.0, 2.0],
                num_iterations: 10.0,
                dead: None,
                env_fp: env_fingerprint(&env),
            })
            .unwrap();
        let (core0, th0) = parts0;
        let (mut live, _) =
            HybridState::resume_from_parts(core0, th0, &geo1, &env, &delta, &profile1).unwrap();
        let moves1 = vec![(41u32, 2u8), (5, 3), (41, 4), (2, 2)];
        for &(v, d) in &moves1 {
            live.apply_move_with(&env, v, d, &mut scratch);
        }
        store.log_batch(&Batch { window: 1, step: 0, moves: moves1[..2].to_vec() }).unwrap();
        store
            .log_batch(&Batch {
                window: 1,
                step: Batch::RECONCILE_STEP,
                moves: moves1[2..].to_vec(),
            })
            .unwrap();
        store
            .log_commit(&Commit {
                window: 1,
                theta: th0 as u64,
                movement_cost_bits: live.core().movement_cost().to_bits(),
                masters_fnv: masters_fnv(live.core().masters()),
            })
            .unwrap();
        let live_parts = live.into_parts();
        drop(store);

        let (recovered, report, _store) = DurableStore::recover(&dir, &env).unwrap();
        assert_eq!(report.wal.torn_tail_bytes, 0);
        assert_eq!(recovered.next_window, 2);
        assert_eq!(recovered.replayed_windows, 2);
        assert!(!recovered.rolled_back);
        assert_eq!(recovered.geo.num_vertices(), n1);
        assert_parts_bit_identical(recovered.parts.as_ref().unwrap(), &live_parts);

        // And the recovered plan is internally consistent.
        let (core, theta) = recovered.parts.unwrap();
        HybridState::from_parts(core, theta, &recovered.geo).validate_plan(&env).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_window_rolls_back() {
        let dir = tmp_dir("rollback");
        let env = geosim::regions::ec2_eight_regions();
        let geo = build_geo(24);
        let mut store = DurableStore::create(&dir, &geo, &env).unwrap();
        store
            .log_window_start(&WindowStart {
                window: 0,
                delta: None,
                loc_suffix: Vec::new(),
                size_suffix: Vec::new(),
                gather_suffix: vec![8.0; 24],
                apply_suffix: vec![8.0; 24],
                num_iterations: 5.0,
                dead: None,
                env_fp: env_fingerprint(&env),
            })
            .unwrap();
        store.log_batch(&Batch { window: 0, step: 0, moves: vec![(1, 2)] }).unwrap();
        // Crash before commit.
        drop(store);
        let (recovered, _, store) = DurableStore::recover(&dir, &env).unwrap();
        assert!(recovered.rolled_back);
        assert_eq!(recovered.dropped_records, 2);
        assert_eq!(recovered.next_window, 0);
        assert!(recovered.parts.is_none());
        assert_eq!(recovered.masters(), &geo.locations[..]);
        // The store is positioned past the dead records; the driver
        // re-feeds window 0 and the log stays well-formed.
        assert!(store.next_lsn() >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_bounds_replay_and_prunes_log() {
        let dir = tmp_dir("snapshot");
        let env = geosim::regions::ec2_eight_regions();
        let geo = build_geo(32);
        let mut store = DurableStore::create(&dir, &geo, &env).unwrap();
        let profile = TrafficProfile::uniform(32, 8.0);
        store
            .log_window_start(&WindowStart {
                window: 0,
                delta: None,
                loc_suffix: Vec::new(),
                size_suffix: Vec::new(),
                gather_suffix: profile.gather_bytes.clone(),
                apply_suffix: profile.apply_bytes.clone(),
                num_iterations: 10.0,
                dead: None,
                env_fp: env_fingerprint(&env),
            })
            .unwrap();
        let mut scratch = MoveScratch::new();
        let mut live =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), 3, profile.clone(), 10.0);
        live.apply_move_with(&env, 9, 1, &mut scratch);
        store.log_batch(&Batch { window: 0, step: 0, moves: vec![(9, 1)] }).unwrap();
        store
            .log_commit(&Commit {
                window: 0,
                theta: 3,
                movement_cost_bits: live.core().movement_cost().to_bits(),
                masters_fnv: masters_fnv(live.core().masters()),
            })
            .unwrap();
        let (core, theta) = live.into_parts();
        let snap = Snapshot {
            lsn: store.next_lsn(),
            window: 1,
            env_fp: env_fingerprint(&env),
            geo: geo.clone(),
            placement: Some((core, theta)),
            trainer: Some(vec![9, 9, 9]),
        };
        store.write_snapshot(&snap).unwrap();
        drop(store);

        let (recovered, _, _) = DurableStore::recover(&dir, &env).unwrap();
        // Nothing to replay: the snapshot already covers the whole log.
        assert_eq!(recovered.replayed_windows, 0);
        assert_eq!(recovered.next_window, 1);
        assert_eq!(recovered.trainer, Some(vec![9, 9, 9]));
        assert!(recovered.parts.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recovering a store against a different environment must be the
    /// typed [`DurableError::EnvMismatch`], not a silently re-priced
    /// replay — caught at the genesis snapshot and, when the snapshot is
    /// somehow current, at the first window-start record.
    #[test]
    fn recovering_with_a_different_env_is_a_typed_error() {
        let dir = tmp_dir("env_mismatch");
        let env = geosim::regions::ec2_eight_regions();
        let geo = build_geo(24);
        let mut store = DurableStore::create(&dir, &geo, &env).unwrap();
        let profile = TrafficProfile::uniform(24, 8.0);
        store
            .log_window_start(&WindowStart {
                window: 0,
                delta: None,
                loc_suffix: Vec::new(),
                size_suffix: Vec::new(),
                gather_suffix: profile.gather_bytes.clone(),
                apply_suffix: profile.apply_bytes.clone(),
                num_iterations: 5.0,
                dead: None,
                env_fp: env_fingerprint(&env),
            })
            .unwrap();
        let mut live =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), 3, profile, 5.0);
        let mut scratch = MoveScratch::new();
        live.apply_move_with(&env, 4, 2, &mut scratch);
        store.log_batch(&Batch { window: 0, step: 0, moves: vec![(4, 2)] }).unwrap();
        store
            .log_commit(&Commit {
                window: 0,
                theta: 3,
                movement_cost_bits: live.core().movement_cost().to_bits(),
                masters_fnv: masters_fnv(live.core().masters()),
            })
            .unwrap();
        drop(store);

        // Same DC count, different bandwidths/prices: the DC-count checks
        // alone would let this through, the fingerprint must not.
        let other = CloudEnv::new(
            env.dcs()
                .iter()
                .map(|dc| geosim::Datacenter {
                    name: dc.name.clone(),
                    uplink_bps: dc.uplink_bps * 2.0,
                    downlink_bps: dc.downlink_bps,
                    upload_price_per_byte: dc.upload_price_per_byte,
                })
                .collect(),
        );
        match DurableStore::recover(&dir, &other) {
            Err(DurableError::EnvMismatch { stored, offered, at: "snapshot" }) => {
                assert_eq!(stored, env_fingerprint(&env));
                assert_eq!(offered, env_fingerprint(&other));
            }
            other => panic!("expected EnvMismatch at the snapshot, got {other:?}"),
        }
        // The right environment still recovers cleanly.
        let (recovered, _, _) = DurableStore::recover(&dir, &env).unwrap();
        assert_eq!(recovered.replayed_windows, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
