//! The Low/Medium/High network-heterogeneity environments of Fig 3.
//!
//! The paper's motivation study simulates three environments: **Low** gives
//! every DC the same uplink/downlink (the mean of the measured values);
//! **Medium** is the measured EC2 environment; **High** halves the
//! bandwidths of half of the DCs.

use crate::datacenter::{CloudEnv, Datacenter};
use crate::regions::ec2_eight_regions;

/// Network-heterogeneity level (Fig 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heterogeneity {
    Low,
    Medium,
    High,
}

impl Heterogeneity {
    pub const ALL: [Heterogeneity; 3] =
        [Heterogeneity::Low, Heterogeneity::Medium, Heterogeneity::High];

    /// Derives the environment at this heterogeneity level from a base
    /// (measured) environment.
    pub fn apply(self, base: &CloudEnv) -> CloudEnv {
        match self {
            Heterogeneity::Low => {
                let up = base.mean_uplink();
                let down = base.mean_downlink();
                CloudEnv::new(
                    base.dcs()
                        .iter()
                        .map(|dc| Datacenter {
                            name: dc.name.clone(),
                            uplink_bps: up,
                            downlink_bps: down,
                            upload_price_per_byte: dc.upload_price_per_byte,
                        })
                        .collect(),
                )
            }
            Heterogeneity::Medium => base.clone(),
            Heterogeneity::High => CloudEnv::new(
                base.dcs()
                    .iter()
                    .enumerate()
                    .map(|(i, dc)| {
                        let factor = if i % 2 == 1 { 0.5 } else { 1.0 };
                        Datacenter {
                            name: dc.name.clone(),
                            uplink_bps: dc.uplink_bps * factor,
                            downlink_bps: dc.downlink_bps * factor,
                            upload_price_per_byte: dc.upload_price_per_byte,
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// The Fig 3 environment: this level applied to the 8-region EC2 base.
    pub fn ec2_environment(self) -> CloudEnv {
        self.apply(&ec2_eight_regions())
    }
}

impl std::fmt::Display for Heterogeneity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Heterogeneity::Low => "Low",
            Heterogeneity::Medium => "Medium",
            Heterogeneity::High => "High",
        })
    }
}

/// Coefficient of variation of uplink bandwidths — a scalar heterogeneity
/// measure used in tests and the Fig 3 harness.
pub fn uplink_cv(env: &CloudEnv) -> f64 {
    let mean = env.mean_uplink();
    let var =
        env.dcs().iter().map(|d| (d.uplink_bps - mean).powi(2)).sum::<f64>() / env.num_dcs() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_is_homogeneous() {
        let env = Heterogeneity::Low.ec2_environment();
        assert!(uplink_cv(&env) < 1e-12);
    }

    #[test]
    fn ordering_of_heterogeneity() {
        let low = uplink_cv(&Heterogeneity::Low.ec2_environment());
        let med = uplink_cv(&Heterogeneity::Medium.ec2_environment());
        let high = uplink_cv(&Heterogeneity::High.ec2_environment());
        assert!(low < med && med < high, "{low} {med} {high}");
    }

    #[test]
    fn high_halves_alternating_dcs() {
        let base = ec2_eight_regions();
        let high = Heterogeneity::High.apply(&base);
        assert_eq!(high.uplink(1), base.uplink(1) * 0.5);
        assert_eq!(high.uplink(0), base.uplink(0));
    }

    #[test]
    fn medium_is_identity() {
        let base = ec2_eight_regions();
        assert_eq!(Heterogeneity::Medium.apply(&base), base);
    }

    #[test]
    fn prices_preserved_across_levels() {
        let base = ec2_eight_regions();
        for level in Heterogeneity::ALL {
            let env = level.apply(&base);
            for (a, b) in env.dcs().iter().zip(base.dcs()) {
                assert_eq!(a.upload_price_per_byte, b.upload_price_per_byte);
            }
        }
    }
}
