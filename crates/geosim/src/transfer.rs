//! Per-stage inter-DC load accounting and the Eq 1–3 transfer-time model.
//!
//! A *stage* (gather or apply) produces, for every DC, a total number of
//! bytes it must upload to the WAN and download from it. Under the
//! congestion-free assumption the stage finishes when the slowest DC link
//! drains: `T_stage = max_r max(up_r/U_r, down_r/D_r)` (Eq 2–3). An
//! iteration's time is the sum over its stages because of the global
//! barrier between gather and apply (Eq 1).

use crate::datacenter::CloudEnv;
use crate::DcId;

/// Lane width of the chunked reductions below. Portable SIMD by
/// construction: fixed-size array accumulators over `chunks_exact` compile
/// to `f64x4` vector code on stable without any nightly features.
const LANES: usize = 4;

/// `max_d a[d] / b[d]` over two equal-length rows, chunked [`LANES`] wide.
///
/// `max` is a selection, so reassociating the reduction is *exactly* equal
/// to the serial left fold — lane order never changes the result (all
/// loads are finite and ≥ 0, all bandwidths > 0). Each lane keeps the
/// `bytes / bandwidth` division of the serial model rather than a cached
/// reciprocal multiply: the latter shifts ratios by ~1 ulp, which is
/// enough to flip near-tied argmax decisions downstream.
#[inline]
fn max_ratio(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let mut chunks = a.chunks_exact(LANES).zip(b.chunks_exact(LANES));
    for (ca, cb) in &mut chunks {
        for l in 0..LANES {
            acc[l] = acc[l].max(ca[l] / cb[l]);
        }
    }
    let tail = a.len() - a.len() % LANES;
    for (&xa, &xb) in a[tail..].iter().zip(&b[tail..]) {
        acc[0] = acc[0].max(xa / xb);
    }
    acc.iter().fold(0.0f64, |w, &x| w.max(x))
}

/// `Σ_d a[d] * b[d]` over two equal-length rows, chunked [`LANES`] wide
/// (four independent accumulators, combined once at the end).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let mut chunks = a.chunks_exact(LANES).zip(b.chunks_exact(LANES));
    for (ca, cb) in &mut chunks {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let tail = a.len() - a.len() % LANES;
    for (&xa, &xb) in a[tail..].iter().zip(&b[tail..]) {
        acc[0] += xa * xb;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Stage completion time of explicit per-DC upload/download rows under
/// `env` — the Eq 2/3 reduction `max_r max(up_r/U_r, down_r/D_r)`, shared
/// by [`StageLoads::transfer_time`] and the incremental move-evaluation
/// kernels that project candidate moves onto scratch rows.
///
/// Bandwidth ratios divide against the environment's contiguous
/// uplink/downlink lanes so the reduction is a straight div+max sweep
/// over two pairs of flat rows.
#[inline]
pub fn stage_time_rows(up: &[f64], down: &[f64], env: &CloudEnv) -> f64 {
    debug_assert_eq!(up.len(), env.num_dcs());
    debug_assert_eq!(down.len(), env.num_dcs());
    max_ratio(up, env.uplinks()).max(max_ratio(down, env.downlinks()))
}

/// Monetary cost of a per-DC upload row under `env` ($) — Eq 5's inner
/// term `Σ_r up_r · P_r`; only uploads are charged. Shared by
/// [`StageLoads::upload_cost`] and the kernels' row projections.
#[inline]
pub fn upload_cost_row(up: &[f64], env: &CloudEnv) -> f64 {
    debug_assert_eq!(up.len(), env.num_dcs());
    dot(up, env.prices())
}

/// Per-DC upload/download byte totals for one communication stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageLoads {
    up: Vec<f64>,
    down: Vec<f64>,
}

impl StageLoads {
    /// Zero loads over `num_dcs` data centers.
    pub fn new(num_dcs: usize) -> Self {
        StageLoads { up: vec![0.0; num_dcs], down: vec![0.0; num_dcs] }
    }

    #[inline]
    pub fn num_dcs(&self) -> usize {
        self.up.len()
    }

    /// Adds `bytes` of upload at DC `dc`.
    #[inline]
    pub fn add_up(&mut self, dc: DcId, bytes: f64) {
        self.up[dc as usize] += bytes;
    }

    /// Adds `bytes` of download at DC `dc`.
    #[inline]
    pub fn add_down(&mut self, dc: DcId, bytes: f64) {
        self.down[dc as usize] += bytes;
    }

    /// Records a WAN transfer of `bytes` from `src` to `dst`. Intra-DC
    /// transfers are free and ignored.
    #[inline]
    pub fn add_transfer(&mut self, src: DcId, dst: DcId, bytes: f64) {
        if src != dst {
            self.up[src as usize] += bytes;
            self.down[dst as usize] += bytes;
        }
    }

    /// Upload bytes at `dc`.
    #[inline]
    pub fn up(&self, dc: DcId) -> f64 {
        self.up[dc as usize]
    }

    /// Download bytes at `dc`.
    #[inline]
    pub fn down(&self, dc: DcId) -> f64 {
        self.down[dc as usize]
    }

    /// Total bytes crossing the WAN (sum of uploads).
    pub fn total_up(&self) -> f64 {
        self.up.iter().sum()
    }

    /// Stage completion time under `env` (Eq 2/3): the slowest DC link.
    pub fn transfer_time(&self, env: &CloudEnv) -> f64 {
        debug_assert_eq!(self.num_dcs(), env.num_dcs());
        stage_time_rows(&self.up, &self.down, env)
    }

    /// Monetary cost of the stage's uploads under `env` ($), Eq 5's inner
    /// term: only uploads are charged.
    pub fn upload_cost(&self, env: &CloudEnv) -> f64 {
        debug_assert_eq!(self.num_dcs(), env.num_dcs());
        upload_cost_row(&self.up, env)
    }

    /// Adds another stage's loads into this one (used to aggregate
    /// identical iterations).
    pub fn accumulate(&mut self, other: &StageLoads) {
        debug_assert_eq!(self.num_dcs(), other.num_dcs());
        for r in 0..self.up.len() {
            self.up[r] += other.up[r];
            self.down[r] += other.down[r];
        }
    }

    /// Scales all loads by `factor` (e.g. to model `k` identical iterations).
    pub fn scaled(&self, factor: f64) -> StageLoads {
        StageLoads {
            up: self.up.iter().map(|b| b * factor).collect(),
            down: self.down.iter().map(|b| b * factor).collect(),
        }
    }

    /// Resets all loads to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.up.iter_mut().for_each(|b| *b = 0.0);
        self.down.iter_mut().for_each(|b| *b = 0.0);
    }

    /// Upload loads per DC as a slice (used by incremental evaluators that
    /// project moves onto stack-allocated scratch copies).
    pub fn up_slice(&self) -> &[f64] {
        &self.up
    }

    /// Download loads per DC as a slice.
    pub fn down_slice(&self) -> &[f64] {
        &self.down
    }
}

/// Per-directed-pair byte totals for one communication stage — the input
/// to the asymmetric-path extension of Eq 2/3.
///
/// The per-DC model in [`StageLoads`] cannot see a *single* slow peering
/// path (`FaultKind::PairDegrade`): degrading `src → dst` changes neither
/// DC's aggregate link rate. This matrix keeps the `src → dst` byte totals
/// so [`stage_time_under`](Self::stage_time_under) can bound the stage by
/// the slowest degraded pair as well as the slowest DC link.
#[derive(Clone, Debug, PartialEq)]
pub struct PairLoads {
    num_dcs: usize,
    /// Row-major `num_dcs × num_dcs`, row = source DC. Diagonal stays zero.
    bytes: Vec<f64>,
}

impl PairLoads {
    /// Zero loads over `num_dcs` data centers.
    pub fn new(num_dcs: usize) -> Self {
        PairLoads { num_dcs, bytes: vec![0.0; num_dcs * num_dcs] }
    }

    #[inline]
    pub fn num_dcs(&self) -> usize {
        self.num_dcs
    }

    /// Records a WAN transfer of `bytes` on the directed `src → dst` path.
    /// Intra-DC transfers are free and ignored.
    #[inline]
    pub fn add_transfer(&mut self, src: DcId, dst: DcId, bytes: f64) {
        if src != dst {
            self.bytes[src as usize * self.num_dcs + dst as usize] += bytes;
        }
    }

    /// Byte total on the directed `src → dst` path.
    #[inline]
    pub fn bytes(&self, src: DcId, dst: DcId) -> f64 {
        self.bytes[src as usize * self.num_dcs + dst as usize]
    }

    /// Resets all loads to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.bytes.iter_mut().for_each(|b| *b = 0.0);
    }

    /// The pair-bottleneck term: `max` over *degraded* pairs of
    /// `bytes[s][d] / (min(U_s, D_d) · mult[s][d])`. A directed path can
    /// drain no faster than the slower of its endpoints' links scaled by
    /// the pair multiplier, and the path is asymmetric: degrading
    /// `s → d` never slows `d → s`.
    ///
    /// At `mult == 1` a pair's term never exceeds the per-DC Eq 2/3 row
    /// time (its bytes are a subset of both endpoints' row totals), so
    /// only entries with `mult < 1` are scanned and the effective stage
    /// time is `max(per-DC stage time, this penalty)`.
    pub fn stage_time_under(&self, env: &CloudEnv, pair_mult: &[f64]) -> f64 {
        debug_assert_eq!(self.num_dcs, env.num_dcs());
        debug_assert_eq!(pair_mult.len(), self.bytes.len());
        let (up, down) = (env.uplinks(), env.downlinks());
        let mut worst = 0.0f64;
        for s in 0..self.num_dcs {
            for d in 0..self.num_dcs {
                let mult = pair_mult[s * self.num_dcs + d];
                if mult >= 1.0 {
                    continue;
                }
                let b = self.bytes[s * self.num_dcs + d];
                if b > 0.0 {
                    worst = worst.max(b / (up[s].min(down[d]) * mult));
                }
            }
        }
        worst
    }
}

/// Transfer time of a whole iteration (gather stage then apply stage with a
/// global barrier between them) — the paper's Eq 1.
pub fn iteration_time(gather: &StageLoads, apply: &StageLoads, env: &CloudEnv) -> f64 {
    gather.transfer_time(env) + apply.transfer_time(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::Datacenter;

    fn two_dc_env() -> CloudEnv {
        CloudEnv::new(vec![
            Datacenter::from_gb_units("fast", 1.0, 2.0, 0.10),
            Datacenter::from_gb_units("slow", 0.5, 1.0, 0.20),
        ])
    }

    #[test]
    fn transfer_time_is_slowest_link() {
        let env = two_dc_env();
        let mut loads = StageLoads::new(2);
        loads.add_transfer(0, 1, 1.0e9); // up at fast (1s/1GBps=1s), down at slow (1GB/1GBps=1s)
        assert!((loads.transfer_time(&env) - 1.0).abs() < 1e-9);
        loads.add_transfer(1, 0, 1.0e9); // up at slow: 1GB/0.5GBps = 2s dominates
        assert!((loads.transfer_time(&env) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn intra_dc_transfers_free() {
        let env = two_dc_env();
        let mut loads = StageLoads::new(2);
        loads.add_transfer(0, 0, 5.0e9);
        assert_eq!(loads.transfer_time(&env), 0.0);
        assert_eq!(loads.upload_cost(&env), 0.0);
    }

    #[test]
    fn only_uploads_charged() {
        let env = two_dc_env();
        let mut loads = StageLoads::new(2);
        loads.add_transfer(0, 1, 1.0e9); // 1 GB up at $0.10/GB
        assert!((loads.upload_cost(&env) - 0.10).abs() < 1e-9);
        loads.add_transfer(1, 0, 1.0e9); // 1 GB up at $0.20/GB
        assert!((loads.upload_cost(&env) - 0.30).abs() < 1e-9);
    }

    #[test]
    fn iteration_time_sums_stages() {
        let env = two_dc_env();
        let mut gather = StageLoads::new(2);
        gather.add_transfer(0, 1, 1.0e9);
        let mut apply = StageLoads::new(2);
        apply.add_transfer(1, 0, 0.5e9);
        let t = iteration_time(&gather, &apply, &env);
        assert!((t - 2.0).abs() < 1e-9, "1s gather + 1s apply = {t}");
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = StageLoads::new(2);
        a.add_up(0, 10.0);
        let mut b = StageLoads::new(2);
        b.add_up(0, 5.0);
        b.add_down(1, 3.0);
        a.accumulate(&b);
        assert_eq!(a.up(0), 15.0);
        assert_eq!(a.down(1), 3.0);
        let s = a.scaled(2.0);
        assert_eq!(s.up(0), 30.0);
        assert_eq!(a.up(0), 15.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut a = StageLoads::new(3);
        a.add_up(2, 7.0);
        a.clear();
        assert_eq!(a.num_dcs(), 3);
        assert_eq!(a.total_up(), 0.0);
    }

    #[test]
    fn pair_penalty_is_asymmetric_and_bounded_by_the_slower_endpoint() {
        let env = two_dc_env();
        let mut pairs = PairLoads::new(2);
        pairs.add_transfer(0, 1, 1.0e9);
        pairs.add_transfer(1, 0, 1.0e9);
        pairs.add_transfer(0, 0, 9.0e9); // intra-DC: ignored

        // Healthy matrix: no degraded pair, no penalty.
        let healthy = vec![1.0; 4];
        assert_eq!(pairs.stage_time_under(&env, &healthy), 0.0);

        // Degrade 0→1 to half rate. Path rate = min(U_0=1, D_1=1) GB/s,
        // halved → 1 GB takes 2 s. The reverse pair is untouched.
        let mut mult = vec![1.0; 4];
        mult[1] = 0.5; // [0][1]
        assert!((pairs.stage_time_under(&env, &mult) - 2.0).abs() < 1e-9);

        // Degrading the reverse path instead bottlenecks on slow's uplink:
        // min(U_1=0.5, D_0=2) = 0.5 GB/s, halved → 4 s.
        let mut rev = vec![1.0; 4];
        rev[2] = 0.5; // [1][0]
        assert!((pairs.stage_time_under(&env, &rev) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pair_clear_keeps_shape() {
        let mut p = PairLoads::new(3);
        p.add_transfer(0, 2, 5.0);
        assert_eq!(p.bytes(0, 2), 5.0);
        p.clear();
        assert_eq!(p.num_dcs(), 3);
        assert_eq!(p.bytes(0, 2), 0.0);
    }
}
