//! Deterministic fault injection for the WAN environment.
//!
//! The paper's premise (§II-A, §III) is that WAN bandwidth and pricing are
//! heterogeneous *and unstable*. This module models that instability as a
//! seeded, fully deterministic [`FaultSchedule`]: a sorted list of
//! [`FaultEvent`]s (DC outages and recoveries, link degradations, price
//! surges) indexed by logical step. [`FaultSchedule::view_at`] replays the
//! schedule up to a step and wraps a base [`CloudEnv`] into a
//! [`FaultyEnv`] — a degraded environment plus an explicit dead-DC set —
//! which the transfer/cost model, the execution engine, and the trainer's
//! recovery policy all consume.
//!
//! Events have *set* semantics: `LinkDegrade { factor }` sets a DC's
//! bandwidth multiplier to `factor` of base (it does not compound), and
//! `LinkRestore` sets it back to 1; likewise for prices. A dead DC keeps
//! its base numbers in the materialized [`CloudEnv`] — deadness is an
//! explicit flag checked by the runner and the evacuation path, not a
//! near-zero bandwidth that would poison Eq 1 with overflow-prone ratios.

use rand::prelude::*;

use crate::datacenter::{CloudEnv, Datacenter};
use crate::DcId;

/// What happens to a data center at a schedule step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The DC goes dark: no master may live there and any analytics round
    /// crossing it must abort.
    Outage,
    /// The DC returns with its base characteristics.
    Recovery,
    /// Uplink and downlink scaled to `factor` (in `(0, 1)`) of base.
    LinkDegrade {
        /// Bandwidth multiplier relative to the base environment.
        factor: f64,
    },
    /// Bandwidth restored to base.
    LinkRestore,
    /// Upload price scaled to `factor` (> 1) of base.
    PriceSurge {
        /// Price multiplier relative to the base environment.
        factor: f64,
    },
    /// Price restored to base.
    PriceRestore,
    /// The link flaps: it oscillates between `factor` of base bandwidth
    /// and full bandwidth *faster than one logical step*, spending `duty`
    /// of the time degraded. Too fast to express as separate
    /// degrade/restore events, so the step-level view materializes the
    /// time-averaged throughput `1 - duty * (1 - factor)`. Ended by
    /// [`FaultKind::LinkRestore`], like any bandwidth fault.
    LinkFlap {
        /// Bandwidth multiplier during the degraded phase, in `(0, 1)`.
        factor: f64,
        /// Fraction of each step spent degraded, in `(0, 1]`.
        duty: f64,
    },
    /// One *directed* WAN link degrades: traffic from the event's `dc`
    /// (source) to `dst` flows at `factor` of the pair's base rate, while
    /// both DCs — and the reverse direction — stay healthy. Unlike
    /// [`FaultKind::LinkDegrade`], which models a DC-wide uplink problem,
    /// this captures a single slow peering path; the view keeps it in a
    /// per-pair multiplier matrix ([`FaultyEnv::pair_mults`]) because it
    /// cannot be expressed as any per-DC bandwidth scaling.
    PairDegrade {
        /// Destination DC of the degraded directed link.
        dst: DcId,
        /// Bandwidth multiplier for the `dc → dst` path, in `(0, 1)`.
        factor: f64,
    },
    /// The directed `dc → dst` link returns to its base rate.
    PairRestore {
        /// Destination DC of the restored directed link.
        dst: DcId,
    },
}

impl FaultKind {
    /// Stable ordering rank so same-step events replay deterministically.
    fn rank(&self) -> u8 {
        match self {
            FaultKind::Outage => 0,
            FaultKind::Recovery => 1,
            FaultKind::LinkDegrade { .. } => 2,
            FaultKind::LinkRestore => 3,
            FaultKind::PriceSurge { .. } => 4,
            FaultKind::PriceRestore => 5,
            // Appended, not inserted: existing schedules keep their
            // canonical order byte-for-byte.
            FaultKind::LinkFlap { .. } => 6,
            FaultKind::PairDegrade { .. } => 7,
            FaultKind::PairRestore { .. } => 8,
        }
    }

    /// The effective bandwidth multiplier a flapping link delivers over a
    /// step: `duty` of the time at `factor`, the rest at full rate.
    pub fn flap_multiplier(factor: f64, duty: f64) -> f64 {
        1.0 - duty * (1.0 - factor)
    }
}

/// One scheduled fault: at logical `step`, `kind` happens to `dc`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Logical step (train step or analytics round) the event fires at.
    pub step: u64,
    /// The affected data center.
    pub dc: DcId,
    /// What happens.
    pub kind: FaultKind,
}

/// Tunable knobs for [`FaultSchedule::generate`]; probabilities are per DC
/// per step, durations inclusive step ranges.
#[derive(Clone, Debug)]
pub struct FaultModel {
    /// Probability a live DC suffers an outage at a step.
    pub outage_prob: f64,
    /// Outage length in steps.
    pub outage_duration: (u64, u64),
    /// At most this many DCs dark at once (never all of them).
    pub max_concurrent_outages: usize,
    /// Probability a DC's links degrade at a step.
    pub degrade_prob: f64,
    /// Bandwidth multiplier drawn uniformly from this range.
    pub degrade_factor: (f64, f64),
    /// Degradation length in steps.
    pub degrade_duration: (u64, u64),
    /// Probability a DC's upload price surges at a step.
    pub surge_prob: f64,
    /// Price multiplier drawn uniformly from this range.
    pub surge_factor: (f64, f64),
    /// Surge length in steps.
    pub surge_duration: (u64, u64),
    /// Probability a DC's link starts flapping at a step (sub-step
    /// degrade/restore oscillation, see [`FaultKind::LinkFlap`]).
    pub flap_prob: f64,
    /// Degraded-phase bandwidth multiplier drawn uniformly from this range.
    pub flap_factor: (f64, f64),
    /// Degraded duty cycle drawn uniformly from this range.
    pub flap_duty: (f64, f64),
    /// Flapping length in steps.
    pub flap_duration: (u64, u64),
    /// Probability (per DC per step) that one of the DC's *directed*
    /// outgoing links degrades on its own (see [`FaultKind::PairDegrade`]).
    /// Zero disables pair faults *and* draws no randomness for them, so
    /// schedules generated with the default model stay byte-identical to
    /// pre-pair-fault ones.
    pub pair_degrade_prob: f64,
    /// Pair bandwidth multiplier drawn uniformly from this range.
    pub pair_degrade_factor: (f64, f64),
    /// Pair degradation length in steps.
    pub pair_degrade_duration: (u64, u64),
    /// Probability (per region per step) that a whole geographic region
    /// fails together — all its DCs go dark as one correlated event, or
    /// all degrade together when a full-region blackout would leave no
    /// live DC. Regional outages model one shared failure domain, so they
    /// are exempt from `max_concurrent_outages` (but never kill every DC).
    pub regional_outage_prob: f64,
    /// Regional outage/degradation length in steps.
    pub regional_duration: (u64, u64),
    /// The geographic failure domains (DC ids per region), e.g.
    /// [`crate::regions::geo_region_groups`]. Empty disables regional
    /// faults *and* draws no randomness for them, so schedules generated
    /// with the default model are byte-identical to pre-regional ones.
    pub regions: Vec<Vec<DcId>>,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            outage_prob: 0.002,
            outage_duration: (5, 20),
            max_concurrent_outages: 1,
            degrade_prob: 0.01,
            degrade_factor: (0.2, 0.8),
            degrade_duration: (3, 15),
            surge_prob: 0.005,
            surge_factor: (1.5, 4.0),
            surge_duration: (3, 15),
            flap_prob: 0.0,
            flap_factor: (0.2, 0.8),
            flap_duty: (0.2, 0.9),
            flap_duration: (2, 10),
            pair_degrade_prob: 0.0,
            pair_degrade_factor: (0.1, 0.6),
            pair_degrade_duration: (3, 15),
            regional_outage_prob: 0.0,
            regional_duration: (5, 20),
            regions: Vec::new(),
        }
    }
}

/// A deterministic, replayable sequence of WAN faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    num_dcs: usize,
    horizon: u64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from explicit events. Events are sorted into the
    /// canonical replay order (step, dc, kind); DCs must be in range.
    pub fn from_events(num_dcs: usize, horizon: u64, mut events: Vec<FaultEvent>) -> Self {
        assert!((1..=geograph::MAX_DCS).contains(&num_dcs));
        for e in &events {
            assert!(
                (e.dc as usize) < num_dcs,
                "event references DC {} but the environment has {num_dcs}",
                e.dc
            );
            if let FaultKind::LinkDegrade { factor } = e.kind {
                assert!(factor > 0.0 && factor < 1.0, "degrade factor {factor} not in (0, 1)");
            }
            if let FaultKind::PriceSurge { factor } = e.kind {
                assert!(factor > 1.0 && factor.is_finite(), "surge factor {factor} not > 1");
            }
            if let FaultKind::LinkFlap { factor, duty } = e.kind {
                assert!(factor > 0.0 && factor < 1.0, "flap factor {factor} not in (0, 1)");
                assert!(duty > 0.0 && duty <= 1.0, "flap duty {duty} not in (0, 1]");
            }
            if let FaultKind::PairDegrade { dst, factor } = e.kind {
                assert!(
                    (dst as usize) < num_dcs,
                    "pair event references DC {dst} but the environment has {num_dcs}"
                );
                assert!(
                    dst != e.dc,
                    "pair fault on the intra-DC path {dst} → {dst} is meaningless"
                );
                assert!(factor > 0.0 && factor < 1.0, "pair factor {factor} not in (0, 1)");
            }
            if let FaultKind::PairRestore { dst } = e.kind {
                assert!(
                    (dst as usize) < num_dcs,
                    "pair event references DC {dst} but the environment has {num_dcs}"
                );
            }
        }
        events.sort_by_key(|e| (e.step, e.dc, e.kind.rank()));
        FaultSchedule { num_dcs, horizon, events }
    }

    /// A schedule with no faults — useful as a control arm.
    pub fn quiet(num_dcs: usize, horizon: u64) -> Self {
        Self::from_events(num_dcs, horizon, Vec::new())
    }

    /// The simplest interesting schedule: `dc` dies at `step` and never
    /// recovers. This is the scenario the recovery acceptance test uses.
    pub fn single_outage(num_dcs: usize, horizon: u64, dc: DcId, step: u64) -> Self {
        Self::from_events(num_dcs, horizon, vec![FaultEvent { step, dc, kind: FaultKind::Outage }])
    }

    /// Samples a schedule from `model`, fully determined by `seed`: the
    /// same `(seed, num_dcs, horizon, model)` always yields a byte-identical
    /// schedule (see [`to_text`](Self::to_text)).
    ///
    /// Guarantees: at most `model.max_concurrent_outages` DCs are dark at
    /// once and at least one DC is always live; per-DC fault types never
    /// overlap themselves (a degraded link finishes degrading before it can
    /// degrade again).
    pub fn generate(seed: u64, num_dcs: usize, horizon: u64, model: &FaultModel) -> Self {
        assert!((1..=geograph::MAX_DCS).contains(&num_dcs));
        for group in &model.regions {
            for &dc in group {
                assert!(
                    (dc as usize) < num_dcs,
                    "region group references DC {dc} but the environment has {num_dcs}"
                );
            }
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_5eed_0bad_c10d);
        let mut events = Vec::new();
        // First step a DC is free of each fault type again. Flapping
        // shares `degrade_until` with degradations: both are bandwidth
        // faults ended by `LinkRestore`, so they must never overlap.
        let mut outage_until = vec![0u64; num_dcs];
        let mut degrade_until = vec![0u64; num_dcs];
        let mut surge_until = vec![0u64; num_dcs];
        // One active directed-pair fault per source DC at a time.
        let mut pair_until = vec![0u64; num_dcs];
        for step in 0..horizon {
            // Correlated regional failures first: one draw per region,
            // the whole failure domain goes together.
            for group in &model.regions {
                if group.iter().any(|&dc| outage_until[dc as usize] > step) {
                    continue; // region (partly) dark already
                }
                if !rng.gen_bool(model.regional_outage_prob) {
                    continue;
                }
                let d = rng.gen_range(model.regional_duration.0..=model.regional_duration.1);
                let dark_now = outage_until.iter().filter(|&&u| u > step).count();
                if dark_now + group.len() < num_dcs {
                    for &dc in group {
                        outage_until[dc as usize] = step + d;
                        events.push(FaultEvent { step, dc, kind: FaultKind::Outage });
                        events.push(FaultEvent { step: step + d, dc, kind: FaultKind::Recovery });
                    }
                } else {
                    // A full-region blackout would leave no live DC:
                    // degrade the whole region together instead.
                    let factor = rng.gen_range(model.degrade_factor.0..model.degrade_factor.1);
                    for &dc in group {
                        if degrade_until[dc as usize] > step {
                            continue;
                        }
                        degrade_until[dc as usize] = step + d;
                        events.push(FaultEvent {
                            step,
                            dc,
                            kind: FaultKind::LinkDegrade { factor },
                        });
                        events.push(FaultEvent {
                            step: step + d,
                            dc,
                            kind: FaultKind::LinkRestore,
                        });
                    }
                }
            }
            let mut dark = outage_until.iter().filter(|&&u| u > step).count();
            for dc in 0..num_dcs {
                if outage_until[dc] > step {
                    continue; // dark DCs draw no new faults
                }
                if num_dcs > 1
                    && dark < model.max_concurrent_outages
                    && dark + 1 < num_dcs
                    && rng.gen_bool(model.outage_prob)
                {
                    let d = rng.gen_range(model.outage_duration.0..=model.outage_duration.1);
                    outage_until[dc] = step + d;
                    dark += 1;
                    events.push(FaultEvent { step, dc: dc as DcId, kind: FaultKind::Outage });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::Recovery,
                    });
                    continue;
                }
                if degrade_until[dc] <= step && rng.gen_bool(model.degrade_prob) {
                    let factor = rng.gen_range(model.degrade_factor.0..model.degrade_factor.1);
                    let d = rng.gen_range(model.degrade_duration.0..=model.degrade_duration.1);
                    degrade_until[dc] = step + d;
                    events.push(FaultEvent {
                        step,
                        dc: dc as DcId,
                        kind: FaultKind::LinkDegrade { factor },
                    });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::LinkRestore,
                    });
                }
                if surge_until[dc] <= step && rng.gen_bool(model.surge_prob) {
                    let factor = rng.gen_range(model.surge_factor.0..model.surge_factor.1);
                    let d = rng.gen_range(model.surge_duration.0..=model.surge_duration.1);
                    surge_until[dc] = step + d;
                    events.push(FaultEvent {
                        step,
                        dc: dc as DcId,
                        kind: FaultKind::PriceSurge { factor },
                    });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::PriceRestore,
                    });
                }
                // Guarded so the default (flap-free) model draws no
                // randomness here and keeps legacy schedules byte-identical.
                if model.flap_prob > 0.0
                    && degrade_until[dc] <= step
                    && rng.gen_bool(model.flap_prob)
                {
                    let factor = rng.gen_range(model.flap_factor.0..model.flap_factor.1);
                    let duty = rng.gen_range(model.flap_duty.0..model.flap_duty.1);
                    let d = rng.gen_range(model.flap_duration.0..=model.flap_duration.1);
                    degrade_until[dc] = step + d;
                    events.push(FaultEvent {
                        step,
                        dc: dc as DcId,
                        kind: FaultKind::LinkFlap { factor, duty },
                    });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::LinkRestore,
                    });
                }
                // Guarded so the default (pair-fault-free) model draws no
                // randomness here and keeps legacy schedules byte-identical.
                if model.pair_degrade_prob > 0.0
                    && num_dcs > 1
                    && pair_until[dc] <= step
                    && rng.gen_bool(model.pair_degrade_prob)
                {
                    // Uniform over the other DCs: draw from a range one
                    // short and skip over the source.
                    let pick = rng.gen_range(0..num_dcs - 1);
                    let dst = if pick >= dc { pick + 1 } else { pick } as DcId;
                    let factor =
                        rng.gen_range(model.pair_degrade_factor.0..model.pair_degrade_factor.1);
                    let d = rng
                        .gen_range(model.pair_degrade_duration.0..=model.pair_degrade_duration.1);
                    pair_until[dc] = step + d;
                    events.push(FaultEvent {
                        step,
                        dc: dc as DcId,
                        kind: FaultKind::PairDegrade { dst, factor },
                    });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::PairRestore { dst },
                    });
                }
            }
        }
        Self::from_events(num_dcs, horizon, events)
    }

    /// Number of DCs the schedule was built for.
    pub fn num_dcs(&self) -> usize {
        self.num_dcs
    }

    /// The schedule's step horizon (events past it are allowed but inert
    /// for generators, which clamp nothing).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// All events in canonical replay order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events that fire exactly at `step`.
    pub fn events_at(&self, step: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.step == step)
    }

    /// Whether anything changes at `step` — the trainer's cheap trigger
    /// for re-deriving its [`FaultyEnv`] view.
    pub fn changes_at(&self, step: u64) -> bool {
        self.events.iter().any(|e| e.step == step)
    }

    /// The first outage in the schedule, if any.
    pub fn first_outage(&self) -> Option<(u64, DcId)> {
        self.events.iter().find(|e| matches!(e.kind, FaultKind::Outage)).map(|e| (e.step, e.dc))
    }

    /// Replays every event with `event.step <= step` over `base` and
    /// returns the resulting environment view.
    ///
    /// `base.num_dcs()` must match the schedule's DC count.
    pub fn view_at(&self, base: &CloudEnv, step: u64) -> FaultyEnv {
        assert_eq!(
            base.num_dcs(),
            self.num_dcs,
            "schedule built for {} DCs applied to a {}-DC environment",
            self.num_dcs,
            base.num_dcs()
        );
        let mut dead = vec![false; self.num_dcs];
        let mut bw_mult = vec![1.0f64; self.num_dcs];
        let mut price_mult = vec![1.0f64; self.num_dcs];
        // Directed per-pair multipliers, row = source DC; allocated lazily
        // so pair-fault-free schedules keep the legacy representation.
        let mut pair_mult: Option<Vec<f64>> = None;
        for e in &self.events {
            if e.step > step {
                break; // events are sorted by step
            }
            let d = e.dc as usize;
            match e.kind {
                FaultKind::Outage => dead[d] = true,
                FaultKind::Recovery => dead[d] = false,
                FaultKind::LinkDegrade { factor } => bw_mult[d] = factor,
                FaultKind::LinkRestore => bw_mult[d] = 1.0,
                FaultKind::PriceSurge { factor } => price_mult[d] = factor,
                FaultKind::PriceRestore => price_mult[d] = 1.0,
                FaultKind::LinkFlap { factor, duty } => {
                    bw_mult[d] = FaultKind::flap_multiplier(factor, duty)
                }
                FaultKind::PairDegrade { dst, factor } => {
                    let m = pair_mult.get_or_insert_with(|| vec![1.0; self.num_dcs * self.num_dcs]);
                    m[d * self.num_dcs + dst as usize] = factor;
                }
                FaultKind::PairRestore { dst } => {
                    if let Some(m) = pair_mult.as_mut() {
                        m[d * self.num_dcs + dst as usize] = 1.0;
                    }
                }
            }
        }
        // Fully restored matrices collapse back to None so a view after
        // the last PairRestore equals a never-pair-faulted view.
        if pair_mult.as_ref().is_some_and(|m| m.iter().all(|&x| x == 1.0)) {
            pair_mult = None;
        }
        let dcs = base
            .dcs()
            .iter()
            .enumerate()
            .map(|(d, dc)| Datacenter {
                name: dc.name.clone(),
                uplink_bps: dc.uplink_bps * bw_mult[d],
                downlink_bps: dc.downlink_bps * bw_mult[d],
                upload_price_per_byte: dc.upload_price_per_byte * price_mult[d],
            })
            .collect();
        FaultyEnv { env: CloudEnv::new(dcs), dead, pair_mult }
    }

    /// Stable textual serialization — one event per line in canonical
    /// order. Two schedules are equal iff their texts are byte-identical,
    /// which is what the determinism tests assert.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "# fault schedule dcs={} horizon={}", self.num_dcs, self.horizon).unwrap();
        for e in &self.events {
            match e.kind {
                FaultKind::Outage => writeln!(out, "{} {} outage", e.step, e.dc),
                FaultKind::Recovery => writeln!(out, "{} {} recovery", e.step, e.dc),
                FaultKind::LinkDegrade { factor } => {
                    writeln!(out, "{} {} degrade {factor}", e.step, e.dc)
                }
                FaultKind::LinkRestore => writeln!(out, "{} {} restore-link", e.step, e.dc),
                FaultKind::PriceSurge { factor } => {
                    writeln!(out, "{} {} surge {factor}", e.step, e.dc)
                }
                FaultKind::PriceRestore => writeln!(out, "{} {} restore-price", e.step, e.dc),
                FaultKind::LinkFlap { factor, duty } => {
                    writeln!(out, "{} {} flap {factor} {duty}", e.step, e.dc)
                }
                FaultKind::PairDegrade { dst, factor } => {
                    writeln!(out, "{} {} pair-degrade {dst} {factor}", e.step, e.dc)
                }
                FaultKind::PairRestore { dst } => {
                    writeln!(out, "{} {} pair-restore {dst}", e.step, e.dc)
                }
            }
            .unwrap();
        }
        out
    }
}

/// A [`CloudEnv`] as seen through a fault schedule at one step: degraded
/// bandwidths/prices are materialized into the environment; outages are an
/// explicit flag per DC (the dead DC keeps its base numbers — callers must
/// check [`is_dead`](Self::is_dead), not infer deadness from bandwidth).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultyEnv {
    env: CloudEnv,
    dead: Vec<bool>,
    /// Directed per-pair bandwidth multipliers, `num_dcs × num_dcs` row-major
    /// (row = source DC). `None` means every pair is at its base rate — the
    /// common case, kept as the absence of the matrix so per-DC consumers
    /// pay nothing for the feature.
    pair_mult: Option<Vec<f64>>,
}

impl FaultyEnv {
    /// A view with no active faults.
    pub fn healthy(env: CloudEnv) -> Self {
        let dead = vec![false; env.num_dcs()];
        FaultyEnv { env, dead, pair_mult: None }
    }

    /// The (possibly degraded) environment the transfer/cost model reads.
    pub fn env(&self) -> &CloudEnv {
        &self.env
    }

    /// Whether `dc` is currently dark.
    pub fn is_dead(&self, dc: DcId) -> bool {
        self.dead[dc as usize]
    }

    /// Per-DC deadness flags, in id order.
    pub fn dead_flags(&self) -> &[bool] {
        &self.dead
    }

    /// Bitmask of dead DCs (bit `r` set ⇔ DC `r` is dark).
    pub fn dead_mask(&self) -> u64 {
        self.dead.iter().enumerate().fold(0u64, |m, (d, &x)| if x { m | (1u64 << d) } else { m })
    }

    /// Whether any DC is dark.
    pub fn any_dead(&self) -> bool {
        self.dead.iter().any(|&d| d)
    }

    /// Number of live DCs.
    pub fn num_live(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Whether any *directed pair* is degraded. Per-DC consumers of
    /// [`env`](Self::env) never see pair faults — a degraded pair cannot be
    /// expressed as a per-DC bandwidth scale — so callers that model
    /// asymmetric paths must check this and apply
    /// [`pair_mults`](Self::pair_mults) themselves (e.g. via
    /// [`crate::transfer::PairLoads::stage_time_under`]).
    pub fn has_pair_faults(&self) -> bool {
        self.pair_mult.is_some()
    }

    /// The directed per-pair bandwidth-multiplier matrix, `num_dcs²`
    /// row-major with row = source DC, or `None` when every pair is at its
    /// base rate (a fully restored matrix collapses back to `None`).
    pub fn pair_mults(&self) -> Option<&[f64]> {
        self.pair_mult.as_deref()
    }

    /// Bandwidth multiplier of the directed `src → dst` path (1.0 unless a
    /// pair fault is active on it).
    pub fn pair_mult(&self, src: DcId, dst: DcId) -> f64 {
        match &self.pair_mult {
            Some(m) => m[src as usize * self.env.num_dcs() + dst as usize],
            None => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::ec2_eight_regions;

    #[test]
    fn same_seed_same_schedule() {
        let model = FaultModel::default();
        let a = FaultSchedule::generate(42, 8, 200, &model);
        let b = FaultSchedule::generate(42, 8, 200, &model);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
        let c = FaultSchedule::generate(43, 8, 200, &model);
        assert_ne!(a.to_text(), c.to_text());
    }

    #[test]
    fn view_replays_set_semantics() {
        let base = ec2_eight_regions();
        let events = vec![
            FaultEvent { step: 2, dc: 1, kind: FaultKind::LinkDegrade { factor: 0.5 } },
            FaultEvent { step: 5, dc: 1, kind: FaultKind::LinkRestore },
            FaultEvent { step: 3, dc: 2, kind: FaultKind::PriceSurge { factor: 2.0 } },
            FaultEvent { step: 4, dc: 0, kind: FaultKind::Outage },
            FaultEvent { step: 6, dc: 0, kind: FaultKind::Recovery },
        ];
        let s = FaultSchedule::from_events(8, 10, events);

        let v1 = s.view_at(&base, 1);
        assert_eq!(v1, FaultyEnv::healthy(base.clone()));

        let v2 = s.view_at(&base, 2);
        assert!((v2.env().uplink(1) - base.uplink(1) * 0.5).abs() < 1e-6);
        assert!((v2.env().downlink(1) - base.downlink(1) * 0.5).abs() < 1e-6);
        assert!(!v2.any_dead());

        let v4 = s.view_at(&base, 4);
        assert!(v4.is_dead(0));
        assert_eq!(v4.dead_mask(), 1);
        assert_eq!(v4.num_live(), 7);
        // Dead DC keeps base numbers — deadness is the flag, not bandwidth.
        assert_eq!(v4.env().uplink(0), base.uplink(0));
        assert!((v4.env().price(2) - base.price(2) * 2.0).abs() < 1e-18);

        let v6 = s.view_at(&base, 6);
        assert!(!v6.any_dead());
        assert_eq!(v6.env().uplink(1), base.uplink(1));
        // Surge never restored: still active.
        assert!((v6.env().price(2) - base.price(2) * 2.0).abs() < 1e-18);
    }

    #[test]
    fn generator_never_kills_every_dc() {
        let model = FaultModel {
            outage_prob: 0.5,
            outage_duration: (10, 30),
            max_concurrent_outages: 7,
            ..FaultModel::default()
        };
        let base = ec2_eight_regions();
        let s = FaultSchedule::generate(7, 8, 100, &model);
        for step in 0..100 {
            assert!(s.view_at(&base, step).num_live() >= 1, "all DCs dark at step {step}");
        }
    }

    #[test]
    fn generator_respects_concurrency_cap() {
        let model = FaultModel {
            outage_prob: 0.3,
            outage_duration: (5, 15),
            max_concurrent_outages: 2,
            ..FaultModel::default()
        };
        let base = ec2_eight_regions();
        let s = FaultSchedule::generate(11, 8, 150, &model);
        assert!(s.first_outage().is_some(), "this seed should produce outages");
        for step in 0..150 {
            let dark = 8 - s.view_at(&base, step).num_live();
            assert!(dark <= 2, "{dark} DCs dark at step {step}");
        }
    }

    #[test]
    fn single_outage_schedule() {
        let base = ec2_eight_regions();
        let s = FaultSchedule::single_outage(8, 100, 3, 17);
        assert_eq!(s.first_outage(), Some((17, 3)));
        assert!(!s.view_at(&base, 16).any_dead());
        assert!(s.view_at(&base, 17).is_dead(3));
        assert!(s.view_at(&base, 99).is_dead(3));
        assert!(s.changes_at(17));
        assert!(!s.changes_at(18));
    }

    #[test]
    #[should_panic]
    fn out_of_range_dc_rejected() {
        FaultSchedule::from_events(
            4,
            10,
            vec![FaultEvent { step: 0, dc: 4, kind: FaultKind::Outage }],
        );
    }

    #[test]
    #[should_panic]
    fn bad_degrade_factor_rejected() {
        FaultSchedule::from_events(
            4,
            10,
            vec![FaultEvent { step: 0, dc: 0, kind: FaultKind::LinkDegrade { factor: 1.5 } }],
        );
    }

    #[test]
    fn link_flap_materializes_time_averaged_bandwidth() {
        let base = ec2_eight_regions();
        let events = vec![
            FaultEvent { step: 2, dc: 3, kind: FaultKind::LinkFlap { factor: 0.2, duty: 0.5 } },
            FaultEvent { step: 7, dc: 3, kind: FaultKind::LinkRestore },
        ];
        let s = FaultSchedule::from_events(8, 10, events);
        assert!(!s.view_at(&base, 1).any_dead());
        assert_eq!(s.view_at(&base, 1).env().uplink(3), base.uplink(3));
        // Half the time at 0.2×, half at 1× → 0.6× effective throughput.
        let v = s.view_at(&base, 4);
        assert!((v.env().uplink(3) - base.uplink(3) * 0.6).abs() < 1e-6);
        assert!((v.env().downlink(3) - base.downlink(3) * 0.6).abs() < 1e-6);
        assert!(!v.is_dead(3), "flapping is degradation, not deadness");
        // LinkRestore ends a flap like any bandwidth fault.
        assert_eq!(s.view_at(&base, 7).env().uplink(3), base.uplink(3));
    }

    #[test]
    fn regional_outages_take_the_whole_region_down() {
        let model = FaultModel {
            outage_prob: 0.0, // isolate the regional draw
            regional_outage_prob: 0.05,
            regional_duration: (5, 15),
            regions: crate::regions::geo_region_groups(),
            ..FaultModel::default()
        };
        let a = FaultSchedule::generate(29, 8, 300, &model);
        let b = FaultSchedule::generate(29, 8, 300, &model);
        assert_eq!(a.to_text(), b.to_text(), "same seed must replay identically");

        // Every outage is correlated: the step one member of a group goes
        // dark, every member of that group goes dark.
        let outages: Vec<_> =
            a.events().iter().filter(|e| matches!(e.kind, FaultKind::Outage)).collect();
        assert!(!outages.is_empty(), "this seed should produce regional outages");
        let mut saw_multi_dc_region = false;
        for o in &outages {
            let group = crate::regions::GEO_REGION_GROUPS[crate::regions::geo_region_of(o.dc)];
            for &peer in group {
                assert!(
                    outages.iter().any(|p| p.step == o.step && p.dc == peer),
                    "step {}: DC {} dark without its region peer {}",
                    o.step,
                    o.dc,
                    peer
                );
            }
            saw_multi_dc_region |= group.len() > 1;
        }
        assert!(saw_multi_dc_region, "a multi-DC region should have failed");

        // Whole regions down together still never kills every DC.
        let base = ec2_eight_regions();
        for step in 0..300 {
            assert!(a.view_at(&base, step).num_live() >= 1, "all DCs dark at step {step}");
        }
    }

    #[test]
    fn flap_generation_is_deterministic_and_never_overlaps_degrades() {
        let model = FaultModel { flap_prob: 0.05, degrade_prob: 0.05, ..FaultModel::default() };
        let a = FaultSchedule::generate(31, 8, 200, &model);
        let b = FaultSchedule::generate(31, 8, 200, &model);
        assert_eq!(a.to_text(), b.to_text());
        assert!(
            a.events().iter().any(|e| matches!(e.kind, FaultKind::LinkFlap { .. })),
            "this seed should produce flaps"
        );
        // Bandwidth faults share one per-DC busy window: a flap never
        // starts while a degrade is active and vice versa (their
        // LinkRestores would otherwise cut each other short).
        let mut busy_until = [0u64; 8];
        for e in a.events() {
            match e.kind {
                FaultKind::LinkDegrade { .. } | FaultKind::LinkFlap { .. } => {
                    assert!(
                        busy_until[e.dc as usize] <= e.step,
                        "overlapping bandwidth faults on DC {} at step {}",
                        e.dc,
                        e.step
                    );
                }
                FaultKind::LinkRestore => busy_until[e.dc as usize] = e.step,
                _ => {}
            }
        }
    }

    #[test]
    fn default_model_draws_no_new_randomness() {
        // The richer surface is opt-in: a default model must generate the
        // exact schedule it did before flaps and regional faults existed
        // (seed 11 is the stream the concurrency-cap test has always pinned).
        let s = FaultSchedule::generate(11, 8, 150, &FaultModel::default());
        assert!(!s.events().iter().any(|e| matches!(e.kind, FaultKind::LinkFlap { .. })));
        assert!(!s.events().iter().any(|e| matches!(
            e.kind,
            FaultKind::PairDegrade { .. } | FaultKind::PairRestore { .. }
        )));
        assert!(s.first_outage().is_some(), "legacy seeded stream shifted");
    }

    #[test]
    fn pair_degrade_is_directed_and_leaves_the_dc_row_alone() {
        let base = ec2_eight_regions();
        let events = vec![
            FaultEvent { step: 2, dc: 1, kind: FaultKind::PairDegrade { dst: 4, factor: 0.25 } },
            FaultEvent { step: 6, dc: 1, kind: FaultKind::PairRestore { dst: 4 } },
        ];
        let s = FaultSchedule::from_events(8, 10, events);

        let before = s.view_at(&base, 1);
        assert!(!before.has_pair_faults());
        assert_eq!(before.pair_mult(1, 4), 1.0);

        let v = s.view_at(&base, 3);
        assert!(v.has_pair_faults());
        assert_eq!(v.pair_mult(1, 4), 0.25);
        // Directed: the reverse path and every other pair stay at base rate.
        assert_eq!(v.pair_mult(4, 1), 1.0);
        assert_eq!(v.pair_mult(1, 3), 1.0);
        // The per-DC env is untouched — a slow peering path is not a slow DC.
        assert_eq!(v.env(), &base);
        assert!(!v.any_dead());

        // After the restore the matrix collapses back to None, so the view
        // is indistinguishable from a never-pair-faulted one.
        let after = s.view_at(&base, 6);
        assert_eq!(after, FaultyEnv::healthy(base.clone()));
    }

    #[test]
    fn pair_generation_is_deterministic_and_one_per_source() {
        let model = FaultModel { pair_degrade_prob: 0.05, ..FaultModel::default() };
        let a = FaultSchedule::generate(37, 8, 200, &model);
        let b = FaultSchedule::generate(37, 8, 200, &model);
        assert_eq!(a.to_text(), b.to_text());
        let pairs: Vec<_> =
            a.events().iter().filter(|e| matches!(e.kind, FaultKind::PairDegrade { .. })).collect();
        assert!(!pairs.is_empty(), "this seed should produce pair faults");
        for p in &pairs {
            let FaultKind::PairDegrade { dst, factor } = p.kind else { unreachable!() };
            assert_ne!(dst, p.dc, "generator drew an intra-DC pair");
            assert!(factor > 0.0 && factor < 1.0);
        }
        // At most one active pair fault per source DC at a time.
        let mut busy_until = [0u64; 8];
        for e in a.events() {
            match e.kind {
                FaultKind::PairDegrade { .. } => {
                    assert!(
                        busy_until[e.dc as usize] <= e.step,
                        "overlapping pair faults from DC {} at step {}",
                        e.dc,
                        e.step
                    );
                }
                FaultKind::PairRestore { .. } => busy_until[e.dc as usize] = e.step,
                _ => {}
            }
        }
    }

    #[test]
    fn pair_knob_does_not_shift_the_legacy_rng_stream() {
        // Turning the pair feature off must reproduce the pre-feature
        // schedule byte-for-byte: the guarded draw takes no randomness.
        let legacy = FaultSchedule::generate(11, 8, 150, &FaultModel::default());
        let explicit_off = FaultSchedule::generate(
            11,
            8,
            150,
            &FaultModel { pair_degrade_prob: 0.0, ..FaultModel::default() },
        );
        assert_eq!(legacy.to_text(), explicit_off.to_text());
    }

    #[test]
    #[should_panic]
    fn intra_dc_pair_rejected() {
        FaultSchedule::from_events(
            4,
            10,
            vec![FaultEvent {
                step: 0,
                dc: 2,
                kind: FaultKind::PairDegrade { dst: 2, factor: 0.5 },
            }],
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_pair_dst_rejected() {
        FaultSchedule::from_events(
            4,
            10,
            vec![FaultEvent {
                step: 0,
                dc: 0,
                kind: FaultKind::PairDegrade { dst: 4, factor: 0.5 },
            }],
        );
    }

    #[test]
    #[should_panic]
    fn bad_flap_duty_rejected() {
        FaultSchedule::from_events(
            4,
            10,
            vec![FaultEvent {
                step: 0,
                dc: 0,
                kind: FaultKind::LinkFlap { factor: 0.5, duty: 0.0 },
            }],
        );
    }
}
