//! Deterministic fault injection for the WAN environment.
//!
//! The paper's premise (§II-A, §III) is that WAN bandwidth and pricing are
//! heterogeneous *and unstable*. This module models that instability as a
//! seeded, fully deterministic [`FaultSchedule`]: a sorted list of
//! [`FaultEvent`]s (DC outages and recoveries, link degradations, price
//! surges) indexed by logical step. [`FaultSchedule::view_at`] replays the
//! schedule up to a step and wraps a base [`CloudEnv`] into a
//! [`FaultyEnv`] — a degraded environment plus an explicit dead-DC set —
//! which the transfer/cost model, the execution engine, and the trainer's
//! recovery policy all consume.
//!
//! Events have *set* semantics: `LinkDegrade { factor }` sets a DC's
//! bandwidth multiplier to `factor` of base (it does not compound), and
//! `LinkRestore` sets it back to 1; likewise for prices. A dead DC keeps
//! its base numbers in the materialized [`CloudEnv`] — deadness is an
//! explicit flag checked by the runner and the evacuation path, not a
//! near-zero bandwidth that would poison Eq 1 with overflow-prone ratios.

use rand::prelude::*;

use crate::datacenter::{CloudEnv, Datacenter};
use crate::DcId;

/// What happens to a data center at a schedule step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The DC goes dark: no master may live there and any analytics round
    /// crossing it must abort.
    Outage,
    /// The DC returns with its base characteristics.
    Recovery,
    /// Uplink and downlink scaled to `factor` (in `(0, 1)`) of base.
    LinkDegrade {
        /// Bandwidth multiplier relative to the base environment.
        factor: f64,
    },
    /// Bandwidth restored to base.
    LinkRestore,
    /// Upload price scaled to `factor` (> 1) of base.
    PriceSurge {
        /// Price multiplier relative to the base environment.
        factor: f64,
    },
    /// Price restored to base.
    PriceRestore,
}

impl FaultKind {
    /// Stable ordering rank so same-step events replay deterministically.
    fn rank(&self) -> u8 {
        match self {
            FaultKind::Outage => 0,
            FaultKind::Recovery => 1,
            FaultKind::LinkDegrade { .. } => 2,
            FaultKind::LinkRestore => 3,
            FaultKind::PriceSurge { .. } => 4,
            FaultKind::PriceRestore => 5,
        }
    }
}

/// One scheduled fault: at logical `step`, `kind` happens to `dc`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Logical step (train step or analytics round) the event fires at.
    pub step: u64,
    /// The affected data center.
    pub dc: DcId,
    /// What happens.
    pub kind: FaultKind,
}

/// Tunable knobs for [`FaultSchedule::generate`]; probabilities are per DC
/// per step, durations inclusive step ranges.
#[derive(Clone, Debug)]
pub struct FaultModel {
    /// Probability a live DC suffers an outage at a step.
    pub outage_prob: f64,
    /// Outage length in steps.
    pub outage_duration: (u64, u64),
    /// At most this many DCs dark at once (never all of them).
    pub max_concurrent_outages: usize,
    /// Probability a DC's links degrade at a step.
    pub degrade_prob: f64,
    /// Bandwidth multiplier drawn uniformly from this range.
    pub degrade_factor: (f64, f64),
    /// Degradation length in steps.
    pub degrade_duration: (u64, u64),
    /// Probability a DC's upload price surges at a step.
    pub surge_prob: f64,
    /// Price multiplier drawn uniformly from this range.
    pub surge_factor: (f64, f64),
    /// Surge length in steps.
    pub surge_duration: (u64, u64),
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            outage_prob: 0.002,
            outage_duration: (5, 20),
            max_concurrent_outages: 1,
            degrade_prob: 0.01,
            degrade_factor: (0.2, 0.8),
            degrade_duration: (3, 15),
            surge_prob: 0.005,
            surge_factor: (1.5, 4.0),
            surge_duration: (3, 15),
        }
    }
}

/// A deterministic, replayable sequence of WAN faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    num_dcs: usize,
    horizon: u64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from explicit events. Events are sorted into the
    /// canonical replay order (step, dc, kind); DCs must be in range.
    pub fn from_events(num_dcs: usize, horizon: u64, mut events: Vec<FaultEvent>) -> Self {
        assert!((1..=geograph::MAX_DCS).contains(&num_dcs));
        for e in &events {
            assert!(
                (e.dc as usize) < num_dcs,
                "event references DC {} but the environment has {num_dcs}",
                e.dc
            );
            if let FaultKind::LinkDegrade { factor } = e.kind {
                assert!(factor > 0.0 && factor < 1.0, "degrade factor {factor} not in (0, 1)");
            }
            if let FaultKind::PriceSurge { factor } = e.kind {
                assert!(factor > 1.0 && factor.is_finite(), "surge factor {factor} not > 1");
            }
        }
        events.sort_by_key(|e| (e.step, e.dc, e.kind.rank()));
        FaultSchedule { num_dcs, horizon, events }
    }

    /// A schedule with no faults — useful as a control arm.
    pub fn quiet(num_dcs: usize, horizon: u64) -> Self {
        Self::from_events(num_dcs, horizon, Vec::new())
    }

    /// The simplest interesting schedule: `dc` dies at `step` and never
    /// recovers. This is the scenario the recovery acceptance test uses.
    pub fn single_outage(num_dcs: usize, horizon: u64, dc: DcId, step: u64) -> Self {
        Self::from_events(num_dcs, horizon, vec![FaultEvent { step, dc, kind: FaultKind::Outage }])
    }

    /// Samples a schedule from `model`, fully determined by `seed`: the
    /// same `(seed, num_dcs, horizon, model)` always yields a byte-identical
    /// schedule (see [`to_text`](Self::to_text)).
    ///
    /// Guarantees: at most `model.max_concurrent_outages` DCs are dark at
    /// once and at least one DC is always live; per-DC fault types never
    /// overlap themselves (a degraded link finishes degrading before it can
    /// degrade again).
    pub fn generate(seed: u64, num_dcs: usize, horizon: u64, model: &FaultModel) -> Self {
        assert!((1..=geograph::MAX_DCS).contains(&num_dcs));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_5eed_0bad_c10d);
        let mut events = Vec::new();
        // First step a DC is free of each fault type again.
        let mut outage_until = vec![0u64; num_dcs];
        let mut degrade_until = vec![0u64; num_dcs];
        let mut surge_until = vec![0u64; num_dcs];
        for step in 0..horizon {
            let mut dark = outage_until.iter().filter(|&&u| u > step).count();
            for dc in 0..num_dcs {
                if outage_until[dc] > step {
                    continue; // dark DCs draw no new faults
                }
                if num_dcs > 1
                    && dark < model.max_concurrent_outages
                    && dark + 1 < num_dcs
                    && rng.gen_bool(model.outage_prob)
                {
                    let d = rng.gen_range(model.outage_duration.0..=model.outage_duration.1);
                    outage_until[dc] = step + d;
                    dark += 1;
                    events.push(FaultEvent { step, dc: dc as DcId, kind: FaultKind::Outage });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::Recovery,
                    });
                    continue;
                }
                if degrade_until[dc] <= step && rng.gen_bool(model.degrade_prob) {
                    let factor = rng.gen_range(model.degrade_factor.0..model.degrade_factor.1);
                    let d = rng.gen_range(model.degrade_duration.0..=model.degrade_duration.1);
                    degrade_until[dc] = step + d;
                    events.push(FaultEvent {
                        step,
                        dc: dc as DcId,
                        kind: FaultKind::LinkDegrade { factor },
                    });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::LinkRestore,
                    });
                }
                if surge_until[dc] <= step && rng.gen_bool(model.surge_prob) {
                    let factor = rng.gen_range(model.surge_factor.0..model.surge_factor.1);
                    let d = rng.gen_range(model.surge_duration.0..=model.surge_duration.1);
                    surge_until[dc] = step + d;
                    events.push(FaultEvent {
                        step,
                        dc: dc as DcId,
                        kind: FaultKind::PriceSurge { factor },
                    });
                    events.push(FaultEvent {
                        step: step + d,
                        dc: dc as DcId,
                        kind: FaultKind::PriceRestore,
                    });
                }
            }
        }
        Self::from_events(num_dcs, horizon, events)
    }

    /// Number of DCs the schedule was built for.
    pub fn num_dcs(&self) -> usize {
        self.num_dcs
    }

    /// The schedule's step horizon (events past it are allowed but inert
    /// for generators, which clamp nothing).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// All events in canonical replay order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events that fire exactly at `step`.
    pub fn events_at(&self, step: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.step == step)
    }

    /// Whether anything changes at `step` — the trainer's cheap trigger
    /// for re-deriving its [`FaultyEnv`] view.
    pub fn changes_at(&self, step: u64) -> bool {
        self.events.iter().any(|e| e.step == step)
    }

    /// The first outage in the schedule, if any.
    pub fn first_outage(&self) -> Option<(u64, DcId)> {
        self.events.iter().find(|e| matches!(e.kind, FaultKind::Outage)).map(|e| (e.step, e.dc))
    }

    /// Replays every event with `event.step <= step` over `base` and
    /// returns the resulting environment view.
    ///
    /// `base.num_dcs()` must match the schedule's DC count.
    pub fn view_at(&self, base: &CloudEnv, step: u64) -> FaultyEnv {
        assert_eq!(
            base.num_dcs(),
            self.num_dcs,
            "schedule built for {} DCs applied to a {}-DC environment",
            self.num_dcs,
            base.num_dcs()
        );
        let mut dead = vec![false; self.num_dcs];
        let mut bw_mult = vec![1.0f64; self.num_dcs];
        let mut price_mult = vec![1.0f64; self.num_dcs];
        for e in &self.events {
            if e.step > step {
                break; // events are sorted by step
            }
            let d = e.dc as usize;
            match e.kind {
                FaultKind::Outage => dead[d] = true,
                FaultKind::Recovery => dead[d] = false,
                FaultKind::LinkDegrade { factor } => bw_mult[d] = factor,
                FaultKind::LinkRestore => bw_mult[d] = 1.0,
                FaultKind::PriceSurge { factor } => price_mult[d] = factor,
                FaultKind::PriceRestore => price_mult[d] = 1.0,
            }
        }
        let dcs = base
            .dcs()
            .iter()
            .enumerate()
            .map(|(d, dc)| Datacenter {
                name: dc.name.clone(),
                uplink_bps: dc.uplink_bps * bw_mult[d],
                downlink_bps: dc.downlink_bps * bw_mult[d],
                upload_price_per_byte: dc.upload_price_per_byte * price_mult[d],
            })
            .collect();
        FaultyEnv { env: CloudEnv::new(dcs), dead }
    }

    /// Stable textual serialization — one event per line in canonical
    /// order. Two schedules are equal iff their texts are byte-identical,
    /// which is what the determinism tests assert.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "# fault schedule dcs={} horizon={}", self.num_dcs, self.horizon).unwrap();
        for e in &self.events {
            match e.kind {
                FaultKind::Outage => writeln!(out, "{} {} outage", e.step, e.dc),
                FaultKind::Recovery => writeln!(out, "{} {} recovery", e.step, e.dc),
                FaultKind::LinkDegrade { factor } => {
                    writeln!(out, "{} {} degrade {factor}", e.step, e.dc)
                }
                FaultKind::LinkRestore => writeln!(out, "{} {} restore-link", e.step, e.dc),
                FaultKind::PriceSurge { factor } => {
                    writeln!(out, "{} {} surge {factor}", e.step, e.dc)
                }
                FaultKind::PriceRestore => writeln!(out, "{} {} restore-price", e.step, e.dc),
            }
            .unwrap();
        }
        out
    }
}

/// A [`CloudEnv`] as seen through a fault schedule at one step: degraded
/// bandwidths/prices are materialized into the environment; outages are an
/// explicit flag per DC (the dead DC keeps its base numbers — callers must
/// check [`is_dead`](Self::is_dead), not infer deadness from bandwidth).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultyEnv {
    env: CloudEnv,
    dead: Vec<bool>,
}

impl FaultyEnv {
    /// A view with no active faults.
    pub fn healthy(env: CloudEnv) -> Self {
        let dead = vec![false; env.num_dcs()];
        FaultyEnv { env, dead }
    }

    /// The (possibly degraded) environment the transfer/cost model reads.
    pub fn env(&self) -> &CloudEnv {
        &self.env
    }

    /// Whether `dc` is currently dark.
    pub fn is_dead(&self, dc: DcId) -> bool {
        self.dead[dc as usize]
    }

    /// Per-DC deadness flags, in id order.
    pub fn dead_flags(&self) -> &[bool] {
        &self.dead
    }

    /// Bitmask of dead DCs (bit `r` set ⇔ DC `r` is dark).
    pub fn dead_mask(&self) -> u64 {
        self.dead.iter().enumerate().fold(0u64, |m, (d, &x)| if x { m | (1u64 << d) } else { m })
    }

    /// Whether any DC is dark.
    pub fn any_dead(&self) -> bool {
        self.dead.iter().any(|&d| d)
    }

    /// Number of live DCs.
    pub fn num_live(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::ec2_eight_regions;

    #[test]
    fn same_seed_same_schedule() {
        let model = FaultModel::default();
        let a = FaultSchedule::generate(42, 8, 200, &model);
        let b = FaultSchedule::generate(42, 8, 200, &model);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
        let c = FaultSchedule::generate(43, 8, 200, &model);
        assert_ne!(a.to_text(), c.to_text());
    }

    #[test]
    fn view_replays_set_semantics() {
        let base = ec2_eight_regions();
        let events = vec![
            FaultEvent { step: 2, dc: 1, kind: FaultKind::LinkDegrade { factor: 0.5 } },
            FaultEvent { step: 5, dc: 1, kind: FaultKind::LinkRestore },
            FaultEvent { step: 3, dc: 2, kind: FaultKind::PriceSurge { factor: 2.0 } },
            FaultEvent { step: 4, dc: 0, kind: FaultKind::Outage },
            FaultEvent { step: 6, dc: 0, kind: FaultKind::Recovery },
        ];
        let s = FaultSchedule::from_events(8, 10, events);

        let v1 = s.view_at(&base, 1);
        assert_eq!(v1, FaultyEnv::healthy(base.clone()));

        let v2 = s.view_at(&base, 2);
        assert!((v2.env().uplink(1) - base.uplink(1) * 0.5).abs() < 1e-6);
        assert!((v2.env().downlink(1) - base.downlink(1) * 0.5).abs() < 1e-6);
        assert!(!v2.any_dead());

        let v4 = s.view_at(&base, 4);
        assert!(v4.is_dead(0));
        assert_eq!(v4.dead_mask(), 1);
        assert_eq!(v4.num_live(), 7);
        // Dead DC keeps base numbers — deadness is the flag, not bandwidth.
        assert_eq!(v4.env().uplink(0), base.uplink(0));
        assert!((v4.env().price(2) - base.price(2) * 2.0).abs() < 1e-18);

        let v6 = s.view_at(&base, 6);
        assert!(!v6.any_dead());
        assert_eq!(v6.env().uplink(1), base.uplink(1));
        // Surge never restored: still active.
        assert!((v6.env().price(2) - base.price(2) * 2.0).abs() < 1e-18);
    }

    #[test]
    fn generator_never_kills_every_dc() {
        let model = FaultModel {
            outage_prob: 0.5,
            outage_duration: (10, 30),
            max_concurrent_outages: 7,
            ..FaultModel::default()
        };
        let base = ec2_eight_regions();
        let s = FaultSchedule::generate(7, 8, 100, &model);
        for step in 0..100 {
            assert!(s.view_at(&base, step).num_live() >= 1, "all DCs dark at step {step}");
        }
    }

    #[test]
    fn generator_respects_concurrency_cap() {
        let model = FaultModel {
            outage_prob: 0.3,
            outage_duration: (5, 15),
            max_concurrent_outages: 2,
            ..FaultModel::default()
        };
        let base = ec2_eight_regions();
        let s = FaultSchedule::generate(11, 8, 150, &model);
        assert!(s.first_outage().is_some(), "this seed should produce outages");
        for step in 0..150 {
            let dark = 8 - s.view_at(&base, step).num_live();
            assert!(dark <= 2, "{dark} DCs dark at step {step}");
        }
    }

    #[test]
    fn single_outage_schedule() {
        let base = ec2_eight_regions();
        let s = FaultSchedule::single_outage(8, 100, 3, 17);
        assert_eq!(s.first_outage(), Some((17, 3)));
        assert!(!s.view_at(&base, 16).any_dead());
        assert!(s.view_at(&base, 17).is_dead(3));
        assert!(s.view_at(&base, 99).is_dead(3));
        assert!(s.changes_at(17));
        assert!(!s.changes_at(18));
    }

    #[test]
    #[should_panic]
    fn out_of_range_dc_rejected() {
        FaultSchedule::from_events(
            4,
            10,
            vec![FaultEvent { step: 0, dc: 4, kind: FaultKind::Outage }],
        );
    }

    #[test]
    #[should_panic]
    fn bad_degrade_factor_rejected() {
        FaultSchedule::from_events(
            4,
            10,
            vec![FaultEvent { step: 0, dc: 0, kind: FaultKind::LinkDegrade { factor: 1.5 } }],
        );
    }
}
