//! The eight Amazon EC2 regions of the paper's Exp#1.
//!
//! Three regions (US East, AP Singapore, AP Sydney) come straight from the
//! paper's Table I measurements with cc2.8xlarge instances. The remaining
//! five are interpolated to plausible values consistent with the paper's
//! observations: downlinks several times uplinks, Asia-Pacific/South-America
//! uploads pricier than US/EU, bandwidth spread of roughly ±10 %.

use crate::datacenter::{CloudEnv, Datacenter};
use crate::DcId;

/// Region ids in the order the paper lists them (§VI-A.4).
pub const REGION_NAMES: [&str; 8] = ["USE", "OR", "NC", "EU", "SIN", "TKY", "SYD", "SA"];

/// Names of the four geographic failure domains of
/// [`geo_region_groups`], in group order.
pub const GEO_REGION_NAMES: [&str; 4] = ["NA", "EU", "AP", "SA"];

/// The eight DCs grouped into geographic failure domains: North America
/// {USE, OR, NC}, Europe {EU}, Asia-Pacific {SIN, TKY, SYD}, South
/// America {SA}. A regional incident (fiber cut, weather, grid failure)
/// takes out a whole group together — the correlated-outage model of
/// [`crate::faults::FaultModel::regions`].
pub const GEO_REGION_GROUPS: [&[DcId]; 4] = [&[0, 1, 2], &[3], &[4, 5, 6], &[7]];

/// [`GEO_REGION_GROUPS`] as owned vectors, the shape
/// [`crate::faults::FaultModel`] takes.
pub fn geo_region_groups() -> Vec<Vec<DcId>> {
    GEO_REGION_GROUPS.iter().map(|g| g.to_vec()).collect()
}

/// The geographic group (index into [`GEO_REGION_NAMES`]) a DC of the
/// eight-region environment belongs to.
pub fn geo_region_of(dc: DcId) -> usize {
    GEO_REGION_GROUPS
        .iter()
        .position(|g| g.contains(&dc))
        .unwrap_or_else(|| panic!("DC {dc} is not one of the eight EC2 regions"))
}

/// (uplink GB/s, downlink GB/s, $/GB upload) per region.
/// USE/SIN/SYD are Table I; the rest are interpolations (see module docs).
pub const REGION_SPECS: [(f64, f64, f64); 8] = [
    (0.52, 2.8, 0.09), // US East           — Table I
    (0.50, 2.6, 0.09), // US West Oregon
    (0.51, 2.7, 0.09), // US West N. California
    (0.53, 3.0, 0.09), // EU Ireland
    (0.55, 3.5, 0.12), // AP Singapore      — Table I
    (0.54, 3.2, 0.11), // AP Tokyo
    (0.48, 2.5, 0.14), // AP Sydney         — Table I
    (0.45, 2.2, 0.16), // South America
];

/// The full 8-region environment used by Exp#1 and all simulations.
pub fn ec2_eight_regions() -> CloudEnv {
    CloudEnv::new(
        REGION_NAMES
            .iter()
            .zip(REGION_SPECS)
            .map(|(name, (up, down, price))| Datacenter::from_gb_units(name, up, down, price))
            .collect(),
    )
}

/// The three Table I regions alone (used by the Table I reproduction).
pub fn table1_regions() -> CloudEnv {
    CloudEnv::new(vec![
        Datacenter::from_gb_units("US East", 0.52, 2.8, 0.09),
        Datacenter::from_gb_units("AP Singapore", 0.55, 3.5, 0.12),
        Datacenter::from_gb_units("AP Sydney", 0.48, 2.5, 0.14),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_regions() {
        let env = ec2_eight_regions();
        assert_eq!(env.num_dcs(), 8);
        assert_eq!(env.dc(0).name, "USE");
        assert_eq!(env.dc(7).name, "SA");
    }

    #[test]
    fn table1_values_match_paper() {
        let env = table1_regions();
        assert_eq!(env.uplink(0), 0.52e9);
        assert_eq!(env.downlink(1), 3.5e9);
        assert!((env.price(2) - 0.14e-9).abs() < 1e-15);
    }

    #[test]
    fn paper_observation_downlinks_exceed_uplinks() {
        // "the downlink bandwidths ... are several times higher than their
        // uplink bandwidths" (§II-A).
        let env = ec2_eight_regions();
        for dc in env.dcs() {
            assert!(dc.downlink_bps > 3.0 * dc.uplink_bps, "{}", dc.name);
        }
    }

    #[test]
    fn paper_observation_singapore_vs_sydney() {
        // Uplink +17 %, downlink +40 % for Singapore over Sydney (§II-A).
        let env = ec2_eight_regions();
        let (sin, syd) = (4u8, 6u8);
        let up_gain = env.uplink(sin) / env.uplink(syd);
        let down_gain = env.downlink(sin) / env.downlink(syd);
        assert!((up_gain - 1.17).abs() < 0.03, "uplink gain {up_gain}");
        assert!((down_gain - 1.40).abs() < 0.03, "downlink gain {down_gain}");
    }

    #[test]
    fn us_uploads_cheapest() {
        let env = ec2_eight_regions();
        assert!(env.cheapest_upload_dc() < 4, "a US/EU region should be cheapest");
    }

    #[test]
    fn geo_groups_partition_the_eight_regions() {
        let mut seen = [false; 8];
        for (g, group) in GEO_REGION_GROUPS.iter().enumerate() {
            assert!(!group.is_empty(), "group {g} empty");
            for &dc in *group {
                assert!(!seen[dc as usize], "DC {dc} in two groups");
                seen[dc as usize] = true;
                assert_eq!(geo_region_of(dc), g);
            }
        }
        assert!(seen.iter().all(|&s| s), "every DC must belong to a group");
        assert_eq!(GEO_REGION_GROUPS.len(), GEO_REGION_NAMES.len());
        assert_eq!(geo_region_groups(), vec![vec![0, 1, 2], vec![3], vec![4, 5, 6], vec![7]]);
    }
}
