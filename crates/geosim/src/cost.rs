//! Monetary-cost model: input-data movement (Eq 4) and budgets.
//!
//! Runtime upload cost (Eq 5) lives with [`crate::StageLoads::upload_cost`];
//! this module covers the one-time cost of moving vertex input data when a
//! partitioner places a master away from its natural location, and the
//! budget calibration used throughout the evaluation (the budget is a
//! fraction of the cost of centralizing the whole graph).

use crate::datacenter::CloudEnv;
use crate::DcId;

/// Cost of moving one vertex's input data from its natural DC to its master
/// DC (zero when they coincide): `M_v · d_v · P_{L_v}` (Eq 4).
#[inline]
pub fn vertex_move_cost(env: &CloudEnv, natural: DcId, master: DcId, data_bytes: u64) -> f64 {
    if natural == master {
        0.0
    } else {
        data_bytes as f64 * env.price(natural)
    }
}

/// Total movement cost of a full assignment (Eq 4 summed).
pub fn movement_cost(
    env: &CloudEnv,
    natural: &[DcId],
    masters: &[DcId],
    data_sizes: &[u64],
) -> f64 {
    debug_assert_eq!(natural.len(), masters.len());
    debug_assert_eq!(natural.len(), data_sizes.len());
    natural
        .iter()
        .zip(masters)
        .zip(data_sizes)
        .map(|((&l, &m), &d)| vertex_move_cost(env, l, m, d))
        .sum()
}

/// The cost of the *centralized* strategy: move every vertex's data into
/// the single DC that minimizes the total (§VI-A.4). Returns
/// `(best_dc, cost)`.
///
/// Only vertices outside the destination pay (uploads are charged at the
/// source), so the best destination is the one hosting the most expensive
/// data to move out of.
pub fn centralization_cost(env: &CloudEnv, natural: &[DcId], data_sizes: &[u64]) -> (DcId, f64) {
    let m = env.num_dcs();
    // upload_cost_from[r] = cost of uploading all of r's data to the WAN.
    let mut upload_cost_from = vec![0.0f64; m];
    for (&loc, &size) in natural.iter().zip(data_sizes) {
        upload_cost_from[loc as usize] += size as f64 * env.price(loc);
    }
    let total: f64 = upload_cost_from.iter().sum();
    let mut best = (0 as DcId, f64::INFINITY);
    #[allow(clippy::needless_range_loop)] // dest is a DC id, not just an index
    for dest in 0..m {
        let cost = total - upload_cost_from[dest];
        if cost < best.1 {
            best = (dest as DcId, cost);
        }
    }
    best
}

/// The paper's default budget: `fraction` (default 0.4) of the lowest
/// centralization cost.
pub fn default_budget(env: &CloudEnv, natural: &[DcId], data_sizes: &[u64], fraction: f64) -> f64 {
    centralization_cost(env, natural, data_sizes).1 * fraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::Datacenter;

    fn env() -> CloudEnv {
        CloudEnv::new(vec![
            Datacenter::from_gb_units("cheap", 1.0, 2.0, 0.01),
            Datacenter::from_gb_units("pricey", 1.0, 2.0, 1.00),
        ])
    }

    #[test]
    fn move_cost_zero_when_home() {
        let e = env();
        assert_eq!(vertex_move_cost(&e, 0, 0, 1_000_000), 0.0);
        assert!(vertex_move_cost(&e, 0, 1, 1_000_000) > 0.0);
    }

    #[test]
    fn movement_cost_sums() {
        let e = env();
        let natural = vec![0, 1, 1];
        let masters = vec![1, 1, 0];
        let sizes = vec![1_000_000_000, 1_000_000_000, 2_000_000_000];
        // v0: 1GB from DC0 at $0.01 = 0.01; v1 stays; v2: 2GB from DC1 at $1 = 2.0
        let c = movement_cost(&e, &natural, &masters, &sizes);
        assert!((c - 2.01).abs() < 1e-9, "{c}");
    }

    #[test]
    fn centralization_picks_data_gravity() {
        let e = env();
        // Most data (by upload cost) sits in the pricey DC, so centralizing
        // *into* the pricey DC is cheaper (its data never moves).
        let natural = vec![0, 1, 1, 1];
        let sizes = vec![1_000_000_000; 4];
        let (dest, cost) = centralization_cost(&e, &natural, &sizes);
        assert_eq!(dest, 1);
        assert!((cost - 0.01).abs() < 1e-9);
    }

    #[test]
    fn default_budget_fraction() {
        let e = env();
        let natural = vec![0, 1];
        let sizes = vec![1_000_000_000, 1_000_000_000];
        let full = centralization_cost(&e, &natural, &sizes).1;
        let b = default_budget(&e, &natural, &sizes, 0.4);
        assert!((b - 0.4 * full).abs() < 1e-12);
    }
}
