//! Loading custom cloud environments from plain text files.
//!
//! Format — one DC per line, `#` comments allowed:
//!
//! ```text
//! # name  uplink_GBps  downlink_GBps  price_per_GB
//! us-east    0.52  2.8  0.09
//! ap-sydney  0.48  2.5  0.14
//! ```
//!
//! Lets CLI users and experiments model their own WAN measurements
//! instead of the built-in EC2 presets.

use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::datacenter::{CloudEnv, Datacenter};

/// Errors from environment-file parsing.
#[derive(Debug)]
pub enum EnvIoError {
    Io(std::io::Error),
    Parse {
        line: usize,
        content: String,
    },
    Empty,
    /// More DC lines than the plan machinery's bitmask replica sets
    /// support ([`geograph::MAX_DCS`]). Checked here so a user-supplied
    /// file surfaces a typed error instead of tripping the `CloudEnv`
    /// constructor's assert.
    TooManyDcs {
        count: usize,
        max: usize,
    },
}

impl std::fmt::Display for EnvIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvIoError::Io(e) => write!(f, "I/O error: {e}"),
            EnvIoError::Parse { line, content } => {
                write!(f, "malformed DC spec at line {line}: {content:?}")
            }
            EnvIoError::Empty => write!(f, "environment file defines no data centers"),
            EnvIoError::TooManyDcs { count, max } => {
                write!(f, "environment file defines {count} data centers; at most {max} supported")
            }
        }
    }
}

impl std::error::Error for EnvIoError {}

impl From<std::io::Error> for EnvIoError {
    fn from(e: std::io::Error) -> Self {
        EnvIoError::Io(e)
    }
}

/// Reads a [`CloudEnv`] from a file in the module's format.
pub fn read_env(path: &Path) -> Result<CloudEnv, EnvIoError> {
    parse_env(BufReader::new(std::fs::File::open(path)?))
}

/// Parses a [`CloudEnv`] from any reader.
pub fn parse_env<R: BufRead>(reader: R) -> Result<CloudEnv, EnvIoError> {
    let mut dcs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        let parsed = (|| -> Option<Datacenter> {
            if parts.len() != 4 {
                return None;
            }
            let up: f64 = parts[1].parse().ok()?;
            let down: f64 = parts[2].parse().ok()?;
            let price: f64 = parts[3].parse().ok()?;
            // `parse` accepts "NaN"/"inf"; `NaN <= 0.0` is false, so the
            // sign checks alone would let non-finite values through.
            if !up.is_finite() || !down.is_finite() || !price.is_finite() {
                return None;
            }
            if up <= 0.0 || down <= 0.0 || price < 0.0 {
                return None;
            }
            Some(Datacenter::from_gb_units(parts[0], up, down, price))
        })();
        match parsed {
            Some(dc) => dcs.push(dc),
            None => return Err(EnvIoError::Parse { line: i + 1, content: trimmed.to_string() }),
        }
    }
    if dcs.is_empty() {
        return Err(EnvIoError::Empty);
    }
    if dcs.len() > geograph::MAX_DCS {
        return Err(EnvIoError::TooManyDcs { count: dcs.len(), max: geograph::MAX_DCS });
    }
    Ok(CloudEnv::new(dcs))
}

/// Writes a [`CloudEnv`] in the module's format.
pub fn write_env(env: &CloudEnv, path: &Path) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# name  uplink_GBps  downlink_GBps  price_per_GB")?;
    for dc in env.dcs() {
        writeln!(
            w,
            "{} {} {} {}",
            dc.name.replace(' ', "_"),
            dc.uplink_bps / crate::BYTES_PER_GB,
            dc.downlink_bps / crate::BYTES_PER_GB,
            dc.upload_price_per_byte * crate::BYTES_PER_GB,
        )?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic() {
        let input = "# comment\nuse 0.52 2.8 0.09\nsyd 0.48 2.5 0.14\n";
        let env = parse_env(Cursor::new(input)).unwrap();
        assert_eq!(env.num_dcs(), 2);
        assert_eq!(env.dc(0).name, "use");
        assert!((env.uplink(1) - 0.48e9).abs() < 1.0);
    }

    #[test]
    fn malformed_line_located() {
        let input = "a 1 2 0.1\nbroken line here\n";
        match parse_env(Cursor::new(input)) {
            Err(EnvIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_bandwidth_rejected() {
        assert!(parse_env(Cursor::new("a 0 2 0.1\n")).is_err());
        assert!(parse_env(Cursor::new("a 1 0 0.1\n")).is_err());
    }

    #[test]
    fn negative_bandwidth_rejected() {
        assert!(parse_env(Cursor::new("a -1 2 0.1\n")).is_err());
        assert!(parse_env(Cursor::new("a 1 -2 0.1\n")).is_err());
    }

    #[test]
    fn negative_price_rejected() {
        assert!(parse_env(Cursor::new("a 1 2 -0.1\n")).is_err());
    }

    #[test]
    fn nan_values_rejected() {
        // `"NaN".parse::<f64>()` succeeds, and every comparison against
        // NaN is false — each field must be rejected explicitly.
        assert!(parse_env(Cursor::new("a NaN 2 0.1\n")).is_err());
        assert!(parse_env(Cursor::new("a 1 nan 0.1\n")).is_err());
        assert!(parse_env(Cursor::new("a 1 2 NaN\n")).is_err());
    }

    #[test]
    fn infinite_values_rejected() {
        assert!(parse_env(Cursor::new("a inf 2 0.1\n")).is_err());
        assert!(parse_env(Cursor::new("a 1 inf 0.1\n")).is_err());
        assert!(parse_env(Cursor::new("a 1 2 inf\n")).is_err());
        assert!(parse_env(Cursor::new("a -inf 2 0.1\n")).is_err());
    }

    #[test]
    fn rejection_names_the_line() {
        let input = "# header\ngood 1 2 0.1\nbad NaN 2 0.1\n";
        match parse_env(Cursor::new(input)) {
            Err(EnvIoError::Parse { line, content }) => {
                assert_eq!(line, 3);
                assert!(content.contains("NaN"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(parse_env(Cursor::new("# nothing\n")), Err(EnvIoError::Empty)));
    }

    #[test]
    fn too_many_dcs_rejected_with_typed_error() {
        // One DC past the bitmask limit must surface as a typed error,
        // not the CloudEnv constructor's assert.
        let mut input = String::new();
        for i in 0..=geograph::MAX_DCS {
            input.push_str(&format!("dc{i} 1 2 0.1\n"));
        }
        match parse_env(Cursor::new(input)) {
            Err(EnvIoError::TooManyDcs { count, max }) => {
                assert_eq!(count, geograph::MAX_DCS + 1);
                assert_eq!(max, geograph::MAX_DCS);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("geosim_env_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ec2.env");
        let env = crate::regions::ec2_eight_regions();
        write_env(&env, &path).unwrap();
        let reloaded = read_env(&path).unwrap();
        assert_eq!(reloaded.num_dcs(), 8);
        for (a, b) in reloaded.dcs().iter().zip(env.dcs()) {
            assert!((a.uplink_bps - b.uplink_bps).abs() < 1.0);
            assert!((a.upload_price_per_byte - b.upload_price_per_byte).abs() < 1e-15);
        }
        std::fs::remove_file(&path).ok();
    }
}
