//! # geosim — geo-distributed cloud simulator
//!
//! Models the WAN environment of the RLCut paper (§II-A, §III-A):
//!
//! * Each data center has an **uplink** and a **downlink** bandwidth to the
//!   WAN, and a **price per uploaded byte** (downloads and intra-DC traffic
//!   are free, matching EC2/Azure pricing).
//! * The WAN core is congestion-free — the only bottlenecks are DC
//!   uplinks/downlinks (paper assumption 3, after B4-style private WANs).
//! * Inter-DC transfer time of a communication stage is therefore
//!   `max_r max(upload_r / U_r, download_r / D_r)` (Eq 1–3).
//! * Monetary cost is `Σ_r uploaded_r · P_r` plus input-data movement
//!   (Eq 4–5).
//!
//! [`regions`] provides the eight Amazon EC2 regions of the paper's Exp#1
//! anchored to the measured Table I numbers, and [`heterogeneity`] the
//! Low/Medium/High variants of the Fig 3 motivation study.

pub mod cost;
pub mod datacenter;
pub mod env_io;
pub mod faults;
pub mod heterogeneity;
pub mod regions;
pub mod transfer;

pub use datacenter::{CloudEnv, Datacenter};
pub use faults::{FaultEvent, FaultKind, FaultModel, FaultSchedule, FaultyEnv};
pub use heterogeneity::Heterogeneity;
pub use transfer::{PairLoads, StageLoads};

/// Re-exported DC identifier (defined next to the graph types so both
/// crates agree on the representation).
pub use geograph::DcId;

/// Bytes per gigabyte, used to convert Table I prices ($/GB) into $/byte.
pub const BYTES_PER_GB: f64 = 1_000_000_000.0;
