//! Data-center and cloud-environment descriptions.

use crate::{DcId, BYTES_PER_GB};

/// One data center: its WAN connectivity and upload pricing.
///
/// Bandwidths are stored in bytes/second and the price in dollars/byte;
/// constructors accept the GB-denominated units of the paper's Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct Datacenter {
    pub name: String,
    /// Uplink bandwidth to the WAN, bytes/second.
    pub uplink_bps: f64,
    /// Downlink bandwidth from the WAN, bytes/second.
    pub downlink_bps: f64,
    /// Price of uploading one byte to the WAN, dollars.
    pub upload_price_per_byte: f64,
}

impl Datacenter {
    /// Builds a DC from Table-I-style units: GB/s bandwidths, $/GB price.
    pub fn from_gb_units(
        name: &str,
        uplink_gbps: f64,
        downlink_gbps: f64,
        price_per_gb: f64,
    ) -> Self {
        assert!(uplink_gbps > 0.0 && downlink_gbps > 0.0 && price_per_gb >= 0.0);
        Datacenter {
            name: name.to_string(),
            uplink_bps: uplink_gbps * BYTES_PER_GB,
            downlink_bps: downlink_gbps * BYTES_PER_GB,
            upload_price_per_byte: price_per_gb / BYTES_PER_GB,
        }
    }
}

/// The set of data centers an experiment runs across.
///
/// Besides the `Datacenter` records, the environment keeps the per-DC
/// bandwidths and prices in flat `f64` lanes so the Eq 2/3 max-of-ratios
/// reduction reads contiguous memory instead of hopping through
/// `Datacenter` structs (whose embedded name `String` wrecks locality on
/// the hot path).
#[derive(Clone, Debug, PartialEq)]
pub struct CloudEnv {
    dcs: Vec<Datacenter>,
    uplinks: Vec<f64>,
    downlinks: Vec<f64>,
    prices: Vec<f64>,
}

impl CloudEnv {
    /// Creates an environment. At least one DC; at most [`geograph::MAX_DCS`]
    /// (replica sets are 64-bit bitmasks downstream).
    pub fn new(dcs: Vec<Datacenter>) -> Self {
        assert!(!dcs.is_empty(), "CloudEnv needs at least one data center");
        assert!(
            dcs.len() <= geograph::MAX_DCS,
            "CloudEnv supports at most {} data centers (replica sets are u64 bitmasks), got {}",
            geograph::MAX_DCS,
            dcs.len()
        );
        CloudEnv {
            uplinks: dcs.iter().map(|d| d.uplink_bps).collect(),
            downlinks: dcs.iter().map(|d| d.downlink_bps).collect(),
            prices: dcs.iter().map(|d| d.upload_price_per_byte).collect(),
            dcs,
        }
    }

    /// Number of data centers.
    #[inline]
    pub fn num_dcs(&self) -> usize {
        self.dcs.len()
    }

    /// All DCs, in id order.
    pub fn dcs(&self) -> &[Datacenter] {
        &self.dcs
    }

    /// The DC with id `dc`.
    #[inline]
    pub fn dc(&self, dc: DcId) -> &Datacenter {
        &self.dcs[dc as usize]
    }

    /// Uplink bandwidth of `dc` (bytes/s) — `U_r` in the paper.
    #[inline]
    pub fn uplink(&self, dc: DcId) -> f64 {
        self.uplinks[dc as usize]
    }

    /// Downlink bandwidth of `dc` (bytes/s) — `D_r` in the paper.
    #[inline]
    pub fn downlink(&self, dc: DcId) -> f64 {
        self.downlinks[dc as usize]
    }

    /// Upload price of `dc` ($/byte) — `P_r` in the paper.
    #[inline]
    pub fn price(&self, dc: DcId) -> f64 {
        self.prices[dc as usize]
    }

    /// Per-DC uplink bandwidths as one contiguous lane (bytes/s).
    #[inline]
    pub fn uplinks(&self) -> &[f64] {
        &self.uplinks
    }

    /// Per-DC downlink bandwidths as one contiguous lane (bytes/s).
    #[inline]
    pub fn downlinks(&self) -> &[f64] {
        &self.downlinks
    }

    /// Per-DC upload prices as one contiguous lane ($/byte).
    #[inline]
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// The cheapest-upload DC — the destination a centralized execution
    /// would pick, used to calibrate the budget (§VI-A.4).
    pub fn cheapest_upload_dc(&self) -> DcId {
        let mut best = 0usize;
        for (i, dc) in self.dcs.iter().enumerate() {
            if dc.upload_price_per_byte < self.dcs[best].upload_price_per_byte {
                best = i;
            }
        }
        best as DcId
    }

    /// Mean uplink across DCs (bytes/s).
    pub fn mean_uplink(&self) -> f64 {
        self.dcs.iter().map(|d| d.uplink_bps).sum::<f64>() / self.dcs.len() as f64
    }

    /// Mean downlink across DCs (bytes/s).
    pub fn mean_downlink(&self) -> f64 {
        self.dcs.iter().map(|d| d.downlink_bps).sum::<f64>() / self.dcs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_unit_conversion() {
        let dc = Datacenter::from_gb_units("USE", 0.52, 2.8, 0.09);
        assert!((dc.uplink_bps - 0.52e9).abs() < 1.0);
        assert!((dc.upload_price_per_byte - 0.09e-9).abs() < 1e-15);
    }

    #[test]
    fn accessors() {
        let env = CloudEnv::new(vec![
            Datacenter::from_gb_units("a", 1.0, 2.0, 0.10),
            Datacenter::from_gb_units("b", 0.5, 1.0, 0.05),
        ]);
        assert_eq!(env.num_dcs(), 2);
        assert_eq!(env.uplink(1), 0.5e9);
        assert_eq!(env.downlink(0), 2.0e9);
        assert_eq!(env.cheapest_upload_dc(), 1);
        assert!((env.mean_uplink() - 0.75e9).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_env_rejected() {
        CloudEnv::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        Datacenter::from_gb_units("bad", 0.0, 1.0, 0.1);
    }
}
