#!/usr/bin/env bash
# Full verification gate: release build + tests, lints, formatting.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trainer worker-pool bench smoke run (pool vs scope, BENCH_trainer.json)"
mkdir -p EXPERIMENTS-data
# The bench itself cross-checks that every (threads, dispatch) cell trains
# a bit-identical plan. The >=1.15x pool-vs-scope speedup target only
# holds on hosts with >=4 real cores to park workers on; underprovisioned
# boxes measure pure noise around 1.0x, so the ratio gate is skipped there
# EXPLICITLY (the bench still runs, still cross-checks determinism, and
# records "underprovisioned_host": true in BENCH_trainer.json).
HOST_CPUS=$(nproc)
if [ "$HOST_CPUS" -ge 4 ]; then
  echo "    host has $HOST_CPUS cpus: enforcing the >=1.15x pool-vs-scope gate"
  SPEEDUP_GATE=(--assert-speedup 1.15)
else
  echo "    SKIPPING pool-vs-scope speedup gate: host has $HOST_CPUS cpu(s), gate needs >=4"
  SPEEDUP_GATE=()
fi
cargo run --release -p geobench --bin bench_trainer -- \
  --scale 0.0002 --steps 3 --reps 2 --threads-list 1,4 \
  --out EXPERIMENTS-data/BENCH_trainer.json "${SPEEDUP_GATE[@]}"
grep -q '"underprovisioned_host"' EXPERIMENTS-data/BENCH_trainer.json \
  || { echo "BENCH_trainer.json is missing the underprovisioned_host field"; exit 1; }

echo "==> pool determinism cross-check (1 vs 4 threads)"
cargo test -q -p rlcut deterministic_across_thread_counts

echo "==> shard determinism gate (1 vs 2 vs 4 vs 8 shards, bit-identical masters)"
# The sharded runtime's contract: trained masters are bit-identical to the
# single-process trainer at any shard count, on the property-test graph
# and across dynamic windows.
cargo test -q -p rlcut sharded_masters_match_trainer
cargo test -q -p rlcut sharded_windows_match_unsharded

echo "==> shard runtime bench smoke run (BENCH_shard.json)"
# The bench fails hard if any shard count trains a plan different from the
# single-process trainer (the identical-plan cross-check is built in).
cargo run --release -p geobench --bin bench_shard -- \
  --scale 0.0002 --steps 3 --reps 1 --shards-list 1,2,4 \
  --out EXPERIMENTS-data/BENCH_shard.json
grep -q '"shuffle_bytes"' EXPERIMENTS-data/BENCH_shard.json \
  || { echo "BENCH_shard.json is missing the shuffle_bytes column"; exit 1; }

echo "==> adaptive-window bench smoke run (incremental vs rebuild, BENCH_adaptive.json)"
# Both paths are driven over identical GraphDeltas; every incremental
# window is validated bit-for-bit against a from-scratch rebuild inside
# the bench, and the gate requires the rebuild-per-window ablation to
# cost >=2x the incremental path's total window overhead.
cargo run --release -p geobench --bin bench_adaptive -- \
  --out EXPERIMENTS-data/BENCH_adaptive.json --assert-speedup 2.0

echo "==> incremental == rebuild determinism gate (delta property tests)"
cargo test -q -p integration-tests --test delta_properties

echo "==> cross-window pool persistence gate"
cargo test -q -p rlcut delta_windows_reuse_the_worker_pool

echo "==> crash-recovery gate (kill-at-100+-seeded-points harness)"
# Trains a multi-window durable pipeline, truncates a copy of the WAL at
# every record boundary plus seeded mid-record offsets, and recovers each
# copy: masters must be bit-identical to the uninterrupted run at that
# boundary and the movement-cost accumulator equal to the last f64 bit.
cargo test -q -p integration-tests --test crash_recovery

echo "==> durable recovery bench smoke run (BENCH_durable.json)"
# The bench cross-checks both recovery paths (latest snapshot + WAL tail,
# and full-log replay on a snapshot-free twin) bit-exact against the live
# run; the gate additionally bounds the snapshot-path recovery time.
cargo run --release -p geobench --bin bench_durable -- \
  --scale 0.002 --windows 6 --snapshot-every 3 \
  --out EXPERIMENTS-data/BENCH_durable.json --assert-max-recovery-ms 10000
grep -q '"recovered_bit_exact": true' EXPERIMENTS-data/BENCH_durable.json \
  || { echo "BENCH_durable.json is missing the bit-exact cross-check"; exit 1; }

echo "==> env-mismatch recovery guard gate"
# Recovering a durable store against a CloudEnv other than the one it was
# created under must be a typed EnvMismatch error, never a silent recovery.
cargo test -q -p geodur recovering_with_a_different_env_is_a_typed_error

echo "==> per-pair link fault determinism gate"
# Per-pair degradation must be deterministic per seed and leave the outage
# RNG stream untouched when unused.
cargo test -q -p geosim pair_

echo "==> serving consistency gates (exactly-one-epoch, evacuation, boot-from-store)"
# The serving layer's contract: every response is served from exactly one
# published epoch across concurrent plan flips, a DC killed mid-traffic
# never yields a dead-master response after the evacuation epoch, and a
# daemon rebooted from the DurableStore serves bit-exact masters without
# retraining.
cargo test -q -p integration-tests --test serving

echo "==> serving bench smoke run (boot from store, lookups under live flips, BENCH_serve.json)"
# Boots from a committed store, serves 100k+ Zipf lookups from 4 reader
# threads while the recovered trainer commits a window mid-traffic (the
# --assert-min-flips 1 gate), then reboots and asserts bit-exact masters.
cargo run --release -p geobench --bin bench_serve -- \
  --scale 0.001 --windows 1 --lookups 100000 \
  --out EXPERIMENTS-data/BENCH_serve.json --assert-min-flips 1
grep -q '"restart_bit_exact": true' EXPERIMENTS-data/BENCH_serve.json \
  || { echo "BENCH_serve.json is missing the restart bit-exact cross-check"; exit 1; }

echo "==> streamed-vs-staged ingest determinism gate (property tests)"
# The streaming two-pass CSR build must equal Graph::from_edges /
# GraphBuilder::build bit-for-bit at any chunking and thread count, and
# compressed cold adjacency must be observationally equal to raw rows.
cargo test -q -p integration-tests --test streaming

echo "==> paper-scale substrate bench smoke run (BENCH_scale.json)"
# CI-sized streamed build + scan-capped training window. Gates: the CSR
# stays <= 9.0 bytes per directed edge (narrow u32 offsets — measured
# 8.62; the old usize-offset substrate measured 9.25+ and would fail),
# the streamed build peaks at <= 1.25x the final CSR (no O(E) staging
# copy in the ingest path), and the shard-resident ingest at 4
# edge-balanced shards keeps every shard's peak (view + transients)
# under half the full CSR while cross-checking each streamed view
# bit-identical to the staged build.
cargo run --release -p geobench --bin bench_scale -- \
  --scale 0.002 --steps 2 --threads 2 \
  --out EXPERIMENTS-data/BENCH_scale.json \
  --assert-max-bytes-per-edge 9.0 --assert-build-ratio 1.25 \
  --shards 4 --assert-shard-peak-frac 0.5
grep -q '"build_peak_over_final_ratio"' EXPERIMENTS-data/BENCH_scale.json \
  || { echo "BENCH_scale.json is missing the build-ratio field"; exit 1; }
grep -q '"shard_peak_frac_max"' EXPERIMENTS-data/BENCH_scale.json \
  || { echo "BENCH_scale.json is missing the shard-resident gate fields"; exit 1; }

# The full Table II LiveJournal preset (4.8M vertices / ~69M directed
# edges) needs ~2 GB of headroom for the CSR + compressed twin + placement
# state; run it only where the host can hold that, and say so EXPLICITLY
# when skipping (the CI-sized run above still gates every contract).
MEM_AVAILABLE_KB=$(awk '/MemAvailable:/ {print $2}' /proc/meminfo 2>/dev/null || echo 0)
if [ "$MEM_AVAILABLE_KB" -ge 6291456 ]; then
  echo "==> full-scale LiveJournal substrate run (scale 1.0, BENCH_scale_full.json)"
  cargo run --release -p geobench --bin bench_scale -- \
    --scale 1.0 --steps 2 \
    --out EXPERIMENTS-data/BENCH_scale_full.json \
    --assert-max-bytes-per-edge 9.0 --assert-build-ratio 1.25 \
    --shards 4 --assert-shard-peak-frac 0.5
else
  echo "    SKIPPING full-scale LiveJournal run EXPLICITLY: MemAvailable is ${MEM_AVAILABLE_KB} kB, need >= 6291456 kB (6 GB)"
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fault-schedule smoke run (exp6)"
cargo run --release -p geobench --bin exp6_faults -- --scale 0.0003 --seed 42 --threads 2

echo "==> move-evaluation kernel micro-bench smoke run"
cargo bench -p geobench --bench micro -- evaluate_all_moves_tw8dc

echo "verify: OK"
