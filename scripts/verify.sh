#!/usr/bin/env bash
# Full verification gate: release build + tests, lints, formatting.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trainer worker-pool bench smoke run (pool vs scope, BENCH_trainer.json)"
mkdir -p EXPERIMENTS-data
# The bench itself cross-checks that every (threads, dispatch) cell trains
# a bit-identical plan. The speedup gate is a loose smoke ratio: the real
# >=1.15x pool-vs-scope target only holds on hosts with >=4 physical
# cores (single-core CI boxes measure pure noise around 1.0x, so 0.5 only
# guards against a catastrophic dispatch regression).
cargo run --release -p geobench --bin bench_trainer -- \
  --scale 0.0002 --steps 3 --reps 2 --threads-list 1,4 \
  --out EXPERIMENTS-data/BENCH_trainer.json --assert-speedup 0.5

echo "==> pool determinism cross-check (1 vs 4 threads)"
cargo test -q -p rlcut deterministic_across_thread_counts

echo "==> adaptive-window bench smoke run (incremental vs rebuild, BENCH_adaptive.json)"
# Both paths are driven over identical GraphDeltas; every incremental
# window is validated bit-for-bit against a from-scratch rebuild inside
# the bench, and the gate requires the rebuild-per-window ablation to
# cost >=2x the incremental path's total window overhead.
cargo run --release -p geobench --bin bench_adaptive -- \
  --out EXPERIMENTS-data/BENCH_adaptive.json --assert-speedup 2.0

echo "==> incremental == rebuild determinism gate (delta property tests)"
cargo test -q -p integration-tests --test delta_properties

echo "==> cross-window pool persistence gate"
cargo test -q -p rlcut delta_windows_reuse_the_worker_pool

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fault-schedule smoke run (exp6)"
cargo run --release -p geobench --bin exp6_faults -- --scale 0.0003 --seed 42 --threads 2

echo "==> move-evaluation kernel micro-bench smoke run"
cargo bench -p geobench --bench micro -- evaluate_all_moves_tw8dc

echo "verify: OK"
