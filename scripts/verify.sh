#!/usr/bin/env bash
# Full verification gate: release build + tests, lints, formatting.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fault-schedule smoke run (exp6)"
cargo run --release -p geobench --bin exp6_faults -- --scale 0.0003 --seed 42 --threads 2

echo "==> move-evaluation kernel micro-bench smoke run"
cargo bench -p geobench --bench micro -- evaluate_all_moves_tw8dc

echo "verify: OK"
