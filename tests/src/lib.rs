//! Integration test crate for the RLCut workspace (tests live in `tests/tests/`).
