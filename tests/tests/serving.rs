//! Serving-layer integration: lock-free routing under live
//! re-partitioning, evacuation races, and restart-without-retraining.
//!
//! The contract under test, end to end:
//!
//! * every lookup response is served from **exactly one** published
//!   epoch — never a blend of two tables, however hard the flip rate
//!   races the readers;
//! * a DC killed mid-traffic is evacuated with one flip: responses
//!   observe the pre-fault table or the post-evacuation table, and no
//!   post-evacuation response ever routes to the dead DC;
//! * a server booted from the durable store serves bit-exactly the
//!   masters the live trainer's server was serving when the process
//!   died — no retraining, whether recovery replays the WAL or loads a
//!   snapshot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use geograph::dynamic::{apply_events, split_for_dynamic};
use geograph::generators::preferential::preferential_attachment_edges;
use geograph::locality::{assign_locations, LocalityConfig};
use geograph::{DcId, GeoGraph, GraphBuilder, GraphDelta, VertexId};
use geopart::TrafficProfile;
use geoserve::{PlacementServer, RoutingTable};
use geosim::faults::FaultSchedule;
use geosim::regions::ec2_eight_regions;
use rlcut::{DurableAdaptive, RlCutConfig};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rlcut_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pinned_config() -> RlCutConfig {
    RlCutConfig::new(1.0)
        .with_seed(13)
        .with_threads(2)
        .with_theta(8)
        .with_fixed_sample_rate(0.2)
        .with_max_steps(2)
}

struct Workload {
    geo0: GeoGraph,
    steps: Vec<(GraphDelta, Vec<DcId>, Vec<u64>)>,
}

fn workload() -> Workload {
    let n = 400;
    let edges = preferential_attachment_edges(n, 3, 23);
    let (initial, stream) = split_for_dynamic(&edges, n, 0.6, 10_000);
    let windows: Vec<_> = stream.windows(2_500).collect();
    assert!(windows.len() >= 3, "need several delta windows, got {}", windows.len());
    let full_graph = {
        let mut b = GraphBuilder::new(n);
        b.add_edges(initial.edges());
        apply_events(&mut b, stream.events());
        b.build()
    };
    let cfg = LocalityConfig::paper_default(23);
    let locations = assign_locations(&full_graph, &cfg);
    let sizes: Vec<u64> = (0..full_graph.num_vertices()).map(|_| 2048).collect();

    let mut graph = initial;
    let geo0 = GeoGraph::new(
        graph.clone(),
        locations[..graph.num_vertices()].to_vec(),
        sizes[..graph.num_vertices()].to_vec(),
        cfg.num_dcs,
    );
    let mut steps = Vec::new();
    for window in &windows {
        let delta = GraphDelta::from_events(&graph, window);
        let old_n = graph.num_vertices();
        graph = graph.apply_delta(&delta);
        let new_n = graph.num_vertices();
        steps.push((delta, locations[old_n..new_n].to_vec(), sizes[old_n..new_n].to_vec()));
    }
    Workload { geo0, steps }
}

/// Four reader threads hammer the board across 100 plan flips; the
/// table published at epoch `e` routes every vertex `v` to
/// `(e - 1 + v) % num_dcs`, so each response can be checked against the
/// exact epoch that claims to have served it. Any torn read — half old
/// table, half new — fails the per-element assertion.
#[test]
fn every_response_matches_exactly_one_published_epoch() {
    const DCS: usize = 8;
    const N: u32 = 512;
    const FLIPS: u64 = 100;
    let table_for = |window: u64| {
        let homes: Vec<DcId> = (0..N as u64).map(|v| ((window + v) % DCS as u64) as DcId).collect();
        RoutingTable::from_homes(window, &homes, DCS)
    };
    // Epoch e serves window e - 1: epoch 1 is the initial table.
    let server = PlacementServer::new(table_for(0), vec![0; N as usize]);
    let board = server.board();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for r in 0..4u64 {
        let mut reader = board.reader();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let vs: Vec<VertexId> = (0..N).map(|i| (i * 7 + r as u32) % N).collect();
            let mut out = Vec::new();
            let mut batches = 0u64;
            let mut seen_epochs = std::collections::BTreeSet::new();
            while !stop.load(Ordering::Relaxed) {
                let epoch = reader.lookup_many(&vs, &mut out);
                let window = epoch - 1;
                for (i, &v) in vs.iter().enumerate() {
                    assert_eq!(
                        out[i] as u64,
                        (window + v as u64) % DCS as u64,
                        "reader {r}: response for vertex {v} does not match epoch {epoch}"
                    );
                }
                seen_epochs.insert(epoch);
                batches += 1;
            }
            (batches, seen_epochs.len())
        }));
    }

    for w in 1..=FLIPS {
        let epoch = board.publish(table_for(w));
        assert_eq!(epoch, w + 1, "publication epochs must be dense");
        // A little real work between flips so readers interleave.
        std::thread::sleep(Duration::from_micros(200));
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_batches = 0;
    let mut max_epochs = 0;
    for h in handles {
        let (batches, epochs) = h.join().expect("reader panicked");
        total_batches += batches;
        max_epochs = max_epochs.max(epochs);
    }
    assert!(total_batches > 0, "readers never ran");
    assert!(max_epochs > 1, "no reader ever observed a flip");
    assert_eq!(board.flips(), FLIPS);
}

/// A DC dies mid-traffic. Until the evacuation flip lands, responses
/// come from the pre-fault table; from the evacuation epoch on, no
/// response may ever name the dead DC as a master. There is no third
/// state.
#[test]
fn evacuation_mid_traffic_never_serves_a_dead_master() {
    let w = workload();
    let env = ec2_eight_regions();
    let n = w.geo0.num_vertices();
    let state = geopart::HybridState::from_masters(
        &w.geo0,
        &env,
        w.geo0.locations.clone(),
        8,
        TrafficProfile::uniform(n, 8.0),
        10.0,
    );
    let pre_masters: Vec<DcId> = state.core().masters().to_vec();
    let mut server = PlacementServer::new(
        RoutingTable::from_placement(0, state.core()),
        w.geo0.locations.clone(),
    );
    let board = server.board();

    // The outage comes from a real fault schedule, as the daemon would
    // see it.
    let dead_dc: DcId = 2;
    let schedule = FaultSchedule::single_outage(env.num_dcs(), 100, dead_dc, 10);
    let dead: Vec<bool> = schedule.view_at(&env, 10).dead_flags().to_vec();
    assert!(dead[dead_dc as usize]);
    assert!(pre_masters.contains(&dead_dc), "workload never used the doomed DC");

    let evac_epoch = Arc::new(AtomicU64::new(u64::MAX));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for r in 0..4u32 {
        let mut reader = board.reader();
        let stop = Arc::clone(&stop);
        let evac_epoch = Arc::clone(&evac_epoch);
        let pre = pre_masters.clone();
        let dead = dead.clone();
        handles.push(std::thread::spawn(move || {
            let vs: Vec<VertexId> =
                (0..pre.len() as u32).map(|i| (i * 13 + r) % pre.len() as u32).collect();
            let mut out = Vec::new();
            let (mut pre_batches, mut post_batches) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let epoch = reader.lookup_many(&vs, &mut out);
                // `evac_epoch` is set before the flip is published, so a
                // response at or past it must already be evacuated.
                if epoch >= evac_epoch.load(Ordering::SeqCst) {
                    for &m in &out {
                        assert!(
                            !dead[m as usize],
                            "reader {r}: dead master served at epoch {epoch}"
                        );
                    }
                    post_batches += 1;
                } else {
                    // Pre-fault responses are the trained placement, whole.
                    for (i, &v) in vs.iter().enumerate() {
                        assert_eq!(out[i], pre[v as usize], "reader {r}: torn pre-fault response");
                    }
                    pre_batches += 1;
                }
            }
            (pre_batches, post_batches)
        }));
    }

    // Let traffic flow on the pre-fault plan, then kill the DC.
    std::thread::sleep(Duration::from_millis(20));
    // The next publication epoch is the evacuation's; advertise it
    // first so the reader check covers the flip itself.
    evac_epoch.store(server.published_epoch() + 1, Ordering::SeqCst);
    let flipped = server.evacuate(&dead).expect("evacuation");
    assert_eq!(flipped, evac_epoch.load(Ordering::SeqCst));
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);

    let (mut pre_total, mut post_total) = (0u64, 0u64);
    for h in handles {
        let (pre, post) = h.join().expect("reader panicked");
        pre_total += pre;
        post_total += post;
    }
    assert!(pre_total > 0, "no pre-fault traffic observed");
    assert!(post_total > 0, "no post-evacuation traffic observed");
}

/// The restart path: a trainer runs several windows with a serving
/// board attached, the process "dies", and a fresh server boots from
/// the durable store alone. It must serve bit-exactly the masters the
/// live server was serving — without retraining — both when recovery
/// replays the WAL and when it loads from a snapshot.
#[test]
fn boot_from_store_matches_the_live_server_bit_exactly() {
    let w = workload();
    let env = ec2_eight_regions();
    let t_opt = Duration::from_secs(60);
    let dir = tmp_dir("boot");

    let (live_masters, live_window, live_epoch) = {
        let mut trainer =
            DurableAdaptive::create(&dir, pinned_config(), Some(0.4), w.geo0.clone(), &env, 0)
                .expect("create");
        let server = PlacementServer::new(
            RoutingTable::from_homes(0, &w.geo0.locations, env.num_dcs()),
            w.geo0.locations.clone(),
        );
        server.attach(&mut trainer);
        let p0 = TrafficProfile::uniform(w.geo0.num_vertices(), 8.0);
        trainer.window(&env, None, &[], &[], p0, 10.0, t_opt).expect("window 0");
        for (delta, locs, sizes) in &w.steps {
            let p = TrafficProfile::uniform(delta.new_num_vertices(), 8.0);
            trainer.window(&env, Some(delta), locs, sizes, p, 10.0, t_opt).expect("delta window");
        }
        let mut reader = server.reader();
        let guard = reader.pin();
        assert_eq!(guard.window(), 1 + w.steps.len() as u64, "hook missed a commit");
        (guard.masters().to_vec(), guard.window(), server.published_epoch())
    }; // trainer + live server die here

    // Attached server saw genesis + one flip per committed window.
    assert_eq!(live_epoch, 2 + w.steps.len() as u64);

    // Restart 1: recovery replays the whole WAL (no snapshot was cut).
    let (restarted, report) = PlacementServer::boot_from_store(&dir, &env).expect("boot");
    assert_eq!(report.window, live_window);
    assert_eq!(report.replayed_windows, live_window);
    assert_eq!(report.masters_fnv, geodur::masters_fnv(&live_masters));
    let mut reader = restarted.reader();
    let guard = reader.pin();
    assert_eq!(guard.masters(), &live_masters[..], "restarted server diverged from live");
    assert_eq!(guard.epoch(), 1, "boot must be the first publication of the new process");
    drop(guard);

    // Restart 2: cut a snapshot at the same boundary, boot again — the
    // snapshot path must serve the identical table.
    {
        let (mut trainer, _) =
            DurableAdaptive::recover(&dir, pinned_config(), Some(0.4), &env, 0).expect("recover");
        trainer.snapshot_now().expect("snapshot");
    }
    let (from_snap, report) = PlacementServer::boot_from_store(&dir, &env).expect("boot from snap");
    assert_eq!(report.replayed_windows, 0, "snapshot should cover the whole log");
    let mut reader = from_snap.reader();
    assert_eq!(reader.pin().masters(), &live_masters[..], "snapshot boot diverged");

    // And the env-mismatch guard protects the serving path too.
    let other = geosim::CloudEnv::new(
        env.dcs()
            .iter()
            .map(|dc| geosim::Datacenter {
                name: dc.name.clone(),
                uplink_bps: dc.uplink_bps,
                downlink_bps: dc.downlink_bps * 0.5,
                upload_price_per_byte: dc.upload_price_per_byte,
            })
            .collect(),
    );
    match PlacementServer::boot_from_store(&dir, &other) {
        Err(geoserve::ServeError::Durable(geodur::DurableError::EnvMismatch { .. })) => {}
        other => panic!("expected EnvMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
