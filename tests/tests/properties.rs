//! Property-based tests of the cross-crate invariants the whole
//! reproduction rests on.

use geograph::generators::{rmat, RmatConfig};
use geograph::locality::LocalityConfig;
use geograph::{GeoGraph, Graph, GraphBuilder};
use geopart::{HybridState, MoveScratch, TrafficProfile};
use geosim::regions::ec2_eight_regions;
use proptest::prelude::*;

/// An arbitrary small digraph: vertex count 2..40, edges as index pairs.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            b.add_edges(edges);
            b.build()
        })
    })
}

fn arb_geo() -> impl Strategy<Value = (GeoGraph, u64)> {
    (arb_graph(), 0u64..1000)
        .prop_map(|(g, seed)| (GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed)), seed))
}

/// A random skewed R-MAT graph (the regime the batched kernel targets:
/// power-law degrees with genuine hubs), 256..1024 vertices.
fn arb_rmat_geo() -> impl Strategy<Value = GeoGraph> {
    (8usize..32, 4usize..16, 0u64..1000).prop_map(|(n_scale, density, seed)| {
        let n = n_scale * 32;
        let g = rmat(&RmatConfig::social(n, n * density), seed);
        GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed ^ 0xa5a5))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental move evaluator must agree with applying the move —
    /// for arbitrary graphs, thresholds and move sequences.
    #[test]
    fn evaluate_matches_apply_on_arbitrary_graphs(
        (geo, seed) in arb_geo(),
        theta in 1usize..6,
        moves in proptest::collection::vec((0u32..40, 0u8..8), 1..30),
    ) {
        let env = ec2_eight_regions();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let mut state = HybridState::from_masters(
            &geo, &env, geo.locations.clone(), theta, profile, 10.0,
        );
        let _ = seed;
        for (v, to) in moves {
            let v = v % geo.num_vertices() as u32;
            let predicted = state.evaluate_move(&env, v, to);
            state.apply_move(&env, v, to);
            let actual = state.objective(&env);
            prop_assert!(
                (predicted.transfer_time - actual.transfer_time).abs()
                    <= 1e-9 * actual.transfer_time.max(1e-12),
                "time mismatch: {} vs {}", predicted.transfer_time, actual.transfer_time
            );
            prop_assert!(
                (predicted.total_cost() - actual.total_cost()).abs()
                    <= 1e-9 * actual.total_cost().max(1e-12),
                "cost mismatch: {} vs {}", predicted.total_cost(), actual.total_cost()
            );
        }
        state.check_consistency(&env);
    }

    /// The batched one-sweep kernel must be **bit-for-bit** identical to M
    /// independent per-candidate evaluations — every destination, every
    /// Objective field, `f64::to_bits` equality — on random R-MAT graphs,
    /// interleaved with applied moves so the live counts keep changing.
    #[test]
    fn batched_evaluation_is_bitwise_sequential(
        geo in arb_rmat_geo(),
        theta in 2usize..12,
        moves in proptest::collection::vec((0u32..u32::MAX, 0u8..8), 1..20),
    ) {
        let env = ec2_eight_regions();
        let n = geo.num_vertices() as u32;
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let mut state = HybridState::from_masters(
            &geo, &env, geo.locations.clone(), theta, profile, 10.0,
        );
        let mut batched = MoveScratch::new();
        let mut single = MoveScratch::new();
        for (v, to) in moves {
            let v = v % n;
            let objs = state.evaluate_all_moves(&env, v, &mut batched).to_vec();
            for (d, b) in objs.iter().enumerate() {
                let s = state.evaluate_move_with(&env, v, d as u8, &mut single);
                prop_assert_eq!(
                    b.transfer_time.to_bits(), s.transfer_time.to_bits(),
                    "transfer_time bits differ at v={} d={}: {} vs {}",
                    v, d, b.transfer_time, s.transfer_time
                );
                prop_assert_eq!(
                    b.movement_cost.to_bits(), s.movement_cost.to_bits(),
                    "movement_cost bits differ at v={} d={}: {} vs {}",
                    v, d, b.movement_cost, s.movement_cost
                );
                prop_assert_eq!(
                    b.runtime_cost.to_bits(), s.runtime_cost.to_bits(),
                    "runtime_cost bits differ at v={} d={}: {} vs {}",
                    v, d, b.runtime_cost, s.runtime_cost
                );
            }
            state.apply_move(&env, v, to);
        }
        state.check_consistency(&env);
    }

    /// A scratch arena cycled across environment widths (8 DCs → 4 DCs →
    /// 8 DCs) must produce bit-identical objectives to a fresh arena: the
    /// shrink-then-grow round-trip leaves stale lanes in the buffers, and
    /// the kernels must never let them reach an objective.
    #[test]
    fn scratch_reuse_across_widths_is_bitwise_clean(
        geo8 in arb_rmat_geo(),
        seed4 in 0u64..1000,
        probes in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 1..12),
    ) {
        let env8 = ec2_eight_regions();
        let env4 = geosim::CloudEnv::new(env8.dcs()[..4].to_vec());
        let g4 = rmat(&RmatConfig::social(256, 2048), seed4);
        let geo4 = GeoGraph::from_graph(g4, &LocalityConfig::uniform(4, seed4));

        let profile8 = TrafficProfile::uniform(geo8.num_vertices(), 8.0);
        let s8 = HybridState::from_masters(
            &geo8, &env8, geo8.locations.clone(), 4, profile8, 10.0,
        );
        let profile4 = TrafficProfile::uniform(geo4.num_vertices(), 8.0);
        let s4 = HybridState::from_masters(
            &geo4, &env4, geo4.locations.clone(), 4, profile4, 10.0,
        );

        let mut shared = MoveScratch::new();
        for (p8, p4) in probes {
            let v8 = p8 % geo8.num_vertices() as u32;
            let v4 = p4 % geo4.num_vertices() as u32;
            s8.evaluate_all_moves(&env8, v8, &mut shared);
            s4.evaluate_all_moves(&env4, v4, &mut shared);
            let reused = s8.evaluate_all_moves(&env8, v8, &mut shared).to_vec();
            let mut fresh = MoveScratch::new();
            let clean = s8.evaluate_all_moves(&env8, v8, &mut fresh);
            for (d, (r, c)) in reused.iter().zip(clean).enumerate() {
                prop_assert_eq!(
                    r.transfer_time.to_bits(), c.transfer_time.to_bits(),
                    "transfer_time bits differ at v={} d={}", v8, d
                );
                prop_assert_eq!(
                    r.movement_cost.to_bits(), c.movement_cost.to_bits(),
                    "movement_cost bits differ at v={} d={}", v8, d
                );
                prop_assert_eq!(
                    r.runtime_cost.to_bits(), c.runtime_cost.to_bits(),
                    "runtime_cost bits differ at v={} d={}", v8, d
                );
            }
        }
    }

    /// Replication factor is always in [1, M] and exactly 1 when all
    /// masters share one DC.
    #[test]
    fn replication_factor_bounds((geo, _) in arb_geo(), theta in 1usize..6) {
        let env = ec2_eight_regions();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let natural = HybridState::from_masters(
            &geo, &env, geo.locations.clone(), theta, profile.clone(), 10.0,
        );
        let lambda = natural.core().replication_factor();
        prop_assert!((1.0..=8.0).contains(&lambda), "λ = {lambda}");

        let centralized = HybridState::from_masters(
            &geo, &env, vec![3; geo.num_vertices()], theta, profile, 10.0,
        );
        prop_assert!((centralized.core().replication_factor() - 1.0).abs() < 1e-12);
        prop_assert_eq!(centralized.objective(&env).transfer_time, 0.0);
    }

    /// Round-tripping a move always restores the objective exactly.
    #[test]
    fn move_round_trip_is_identity(
        (geo, _) in arb_geo(),
        v in 0u32..40,
        to in 0u8..8,
    ) {
        let env = ec2_eight_regions();
        let v = v % geo.num_vertices() as u32;
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let mut state = HybridState::from_masters(
            &geo, &env, geo.locations.clone(), 3, profile, 10.0,
        );
        let before = state.objective(&env);
        let home = state.master(v);
        state.apply_move(&env, v, to);
        state.apply_move(&env, v, home);
        let after = state.objective(&env);
        prop_assert!((before.transfer_time - after.transfer_time).abs() < 1e-12);
        prop_assert!((before.total_cost() - after.total_cost()).abs() < 1e-12);
    }

    /// The engine's all-active PageRank traffic equals the static Eq 1
    /// model for arbitrary graphs and thresholds.
    #[test]
    fn engine_matches_static_model((geo, _) in arb_geo(), theta in 1usize..6) {
        let env = ec2_eight_regions();
        let algo = geoengine::Algorithm::PageRank { iterations: 3, damping: 0.85 };
        let profile = algo.profile(&geo);
        let state = HybridState::from_masters(
            &geo, &env, geo.locations.clone(), theta, profile, 3.0,
        );
        let report = geoengine::execute_plan(&geo, &env, state.core(), None, &algo);
        let static_time = state.objective(&env).transfer_time;
        for &t in &report.per_iteration_time {
            prop_assert!(
                (t - static_time).abs() <= 1e-9 * static_time.max(1e-12),
                "engine {t} vs static {static_time}"
            );
        }
    }

    /// Graph structural invariants survive building from arbitrary edges.
    #[test]
    fn csr_degree_sums_match_edge_count(g in arb_graph()) {
        let n = g.num_vertices() as u32;
        let out_sum: usize = (0..n).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..n).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        // Builder cleaning: no self loops, no duplicates.
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            prop_assert_ne!(u, v);
            prop_assert!(seen.insert((u, v)));
        }
    }
}
