//! Dynamic-graph pipeline: windows of arriving edges, both adaptive
//! partitioners, budgets recomputed per window.

use std::time::Duration;

use geobase::spinner::{Spinner, SpinnerConfig};
use geograph::dynamic::{apply_events, DiurnalModel};
use geograph::locality::{assign_locations, LocalityConfig};
use geograph::{GeoGraph, GraphBuilder, VertexId};
use geopart::TrafficProfile;
use geosim::regions::ec2_eight_regions;
use rlcut::{AdaptiveRlCut, RlCutConfig};

fn snapshot(builder: &GraphBuilder, locality: &LocalityConfig) -> GeoGraph {
    let graph = builder.build();
    let locations = assign_locations(&graph, locality);
    let sizes: Vec<u64> = (0..graph.num_vertices() as VertexId)
        .map(|v| 65536 + 256 * graph.out_degree(v) as u64)
        .collect();
    GeoGraph::new(graph, locations, sizes, locality.num_dcs)
}

#[test]
fn rlcut_and_spinner_track_a_growing_graph() {
    let env = ec2_eight_regions();
    let model = DiurnalModel { mean_rate: 150.0, seed: 3, ..Default::default() };
    let (initial, stream) = model.generate_day_stream(600);
    let locality = LocalityConfig::paper_default(3);

    let mut builder = GraphBuilder::new(initial.num_vertices());
    builder.add_edges(initial.edges());

    let mut adaptive =
        AdaptiveRlCut::new(RlCutConfig::new(1.0).with_seed(3).with_threads(2), Some(0.4));
    let mut spinner: Option<Spinner> = None;
    let window = Duration::from_millis(150);
    let mut prev_vertices = 0;

    for events in stream.windows(6 * 3_600_000) {
        let applied = apply_events(&mut builder, events);
        let geo = snapshot(&builder, &locality);
        assert!(geo.num_vertices() >= prev_vertices);
        prev_vertices = geo.num_vertices();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);

        let report = adaptive.on_window(&geo, &env, profile.clone(), 10.0, window).expect("window");
        assert_eq!(adaptive.masters().len(), geo.num_vertices());
        assert!(report.transfer_time.is_finite());
        // Budget recomputed per window must hold.
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        assert!(
            report.total_cost <= budget * (1.0 + 1e-9),
            "window cost {} vs budget {budget}",
            report.total_cost
        );

        match spinner.as_mut() {
            Some(s) => s.adapt(&geo, &applied.new_vertices),
            None => spinner = Some(Spinner::partition(&geo, SpinnerConfig::default())),
        }
        assert_eq!(spinner.as_ref().unwrap().assignment().len(), geo.num_vertices());
    }
}

#[test]
fn adaptive_window_improves_over_cold_natural_plan() {
    // Seeding from the previous window's plan should leave less work than
    // starting cold; after the same window budget the adaptive plan should
    // be at least as good as an untrained natural plan.
    let env = ec2_eight_regions();
    let model = DiurnalModel { mean_rate: 150.0, seed: 4, ..Default::default() };
    let (initial, stream) = model.generate_day_stream(600);
    let locality = LocalityConfig::paper_default(4);

    let mut builder = GraphBuilder::new(initial.num_vertices());
    builder.add_edges(initial.edges());
    let mut adaptive =
        AdaptiveRlCut::new(RlCutConfig::new(1.0).with_seed(4).with_threads(2), Some(0.4));
    let window = Duration::from_millis(200);

    let mut last = None;
    for events in stream.windows(12 * 3_600_000) {
        apply_events(&mut builder, events);
        let geo = snapshot(&builder, &locality);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let report = adaptive.on_window(&geo, &env, profile.clone(), 10.0, window).expect("window");

        let natural = geopart::HybridState::natural(&geo, &env, 8, profile, 10.0);
        assert!(
            report.transfer_time <= natural.objective(&env).transfer_time * (1.0 + 1e-9),
            "adaptive {} worse than natural {}",
            report.transfer_time,
            natural.objective(&env).transfer_time
        );
        last = Some(report);
    }
    assert!(last.is_some());
}
