//! Property tests of the incremental dynamic-window pipeline: for random
//! event streams (inserts *and* deletes, 1–8 windows) the delta-resumed
//! placement state must be indistinguishable from a from-scratch rebuild,
//! and the full adaptive pipeline must be bit-deterministic across thread
//! counts.

use std::time::Duration;

use geograph::dynamic::{EdgeEvent, EventKind};
use geograph::{DcId, GeoGraph, Graph, GraphBuilder, GraphDelta, VertexId};
use geopart::{HybridState, TrafficProfile};
use geosim::regions::ec2_eight_regions;
use proptest::prelude::*;
use rlcut::{AdaptiveRlCut, RlCutConfig};

/// One raw op of a window: `(a, b, kind)` with `kind == 1` a delete.
/// Inserts become the edge `(a, b)`; deletes pick the `a`-th edge (mod
/// count) of the graph at window start, so deletions genuinely hit live
/// edges instead of missing the sparse edge space.
type RawOp = (u32, u32, u32);

/// `(n, initial_edges, windows_of_raw_ops, seed)`.
type RawStream = (usize, Vec<(u32, u32)>, Vec<Vec<RawOp>>, u64);

fn arb_stream() -> impl Strategy<Value = RawStream> {
    (8usize..24, 0u64..1000).prop_flat_map(|(n, seed)| {
        let initial = proptest::collection::vec((0..n as u32, 0..n as u32), 4..80);
        // Endpoints may exceed the initial vertex count: windows grow the
        // vertex table too.
        let windows = proptest::collection::vec(
            proptest::collection::vec((0u32..(n as u32 + 6), 0u32..(n as u32 + 6), 0u32..2), 0..30),
            1..8,
        );
        (Just(n), initial, windows, Just(seed))
    })
}

/// Materializes one window's raw ops into timestamped edge events over the
/// graph at window start.
fn window_events(graph: &Graph, ops: &[RawOp]) -> Vec<EdgeEvent> {
    let live: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let mut events = Vec::with_capacity(ops.len());
    for (t, &(a, b, is_delete)) in ops.iter().enumerate() {
        let is_delete = is_delete == 1;
        let (src, dst, kind) = if is_delete && !live.is_empty() {
            let (u, v) = live[a as usize % live.len()];
            (u, v, EventKind::Delete)
        } else {
            if a == b {
                continue; // the builder drops self-loops; never emit one
            }
            (a, b, EventKind::Insert)
        };
        events.push(EdgeEvent { src, dst, timestamp_ms: t as u64, kind });
    }
    events
}

fn geo_for(graph: &Graph, seed: u64, num_dcs: usize) -> GeoGraph {
    let locations: Vec<DcId> = (0..graph.num_vertices() as u64)
        .map(|v| (geograph::fxhash::mix64(v ^ seed) % num_dcs as u64) as DcId)
        .collect();
    let sizes = vec![2048u64; graph.num_vertices()];
    GeoGraph::new(graph.clone(), locations, sizes, num_dcs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An empty `GraphDelta` is a strict no-op through every layer of the
    /// pipeline: `Graph::apply_delta` returns an equal graph, the
    /// placement-state delta apply performs zero work items and leaves the
    /// plan bit-identical, and `AdaptiveRlCut::on_window_delta` reports a
    /// zero-work window that preserves the carried masters.
    #[test]
    fn empty_delta_is_a_strict_noop((n, initial, _, seed) in arb_stream()) {
        let env = ec2_eight_regions();
        let graph = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial);
            b.build()
        };
        let empty = GraphDelta::from_events(&graph, &[]);
        prop_assert!(empty.is_empty());
        prop_assert_eq!(empty.touched().len(), 0);
        prop_assert_eq!(empty.num_edge_changes(), 0);

        // Layer 1: the CSR overlay.
        let advanced = graph.apply_delta(&empty);
        prop_assert_eq!(&advanced, &graph);

        // Layer 2: the placement state. Zero work items, and the resumed
        // plan is bit-identical on integer state (masters, classes) and
        // survives the rebuild-and-compare.
        let geo = geo_for(&graph, seed, env.num_dcs());
        let theta = 3;
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let state = HybridState::from_masters(
            &geo, &env, geo.locations.clone(), theta, profile.clone(), 10.0,
        );
        let masters_before = state.core().masters().to_vec();
        let (core, th) = state.into_parts();
        let (resumed, stats) =
            HybridState::resume_from_parts(core, th, &geo, &env, &empty, &profile)
                .expect("empty delta must resume");
        prop_assert_eq!(stats.work_items(), 0, "empty delta must do zero work");
        prop_assert_eq!(resumed.core().masters(), masters_before.as_slice());
        resumed.validate_plan(&env).expect("no-op resume diverged from rebuild");

        // Layer 3: the adaptive pipeline. A zero sample rate isolates the
        // delta path — with no training moves, an empty delta must leave
        // the carried masters untouched and report a zero-work window.
        let config = RlCutConfig::new(f64::INFINITY)
            .with_seed(seed)
            .with_theta(3)
            .with_fixed_sample_rate(0.0)
            .with_max_steps(2);
        let mut adaptive = AdaptiveRlCut::new(config, None);
        let t_opt = Duration::from_millis(100);
        adaptive
            .on_window(&geo, &env, profile.clone(), 10.0, t_opt)
            .expect("window 0");
        let carried = adaptive.masters().to_vec();
        let report = adaptive
            .on_window_delta(&geo, &env, &empty, profile, 10.0, t_opt)
            .expect("empty delta window");
        let stats = report.delta_stats.expect("delta path must be taken");
        prop_assert_eq!(stats.work_items(), 0, "empty window must report zero work items");
        prop_assert_eq!(report.migrations, 0);
        prop_assert_eq!(adaptive.masters(), carried.as_slice());
    }

    /// Pure state-level equivalence: a placement state carried through
    /// `resume_from_parts` across every window must match a from-scratch
    /// `from_masters` rebuild bit-for-bit on integer state (f64 aggregates
    /// within `validate_plan` tolerance) — `validate_plan` performs exactly
    /// that rebuild-and-compare.
    #[test]
    fn resumed_state_matches_rebuild((n, initial, windows, seed) in arb_stream()) {
        let env = ec2_eight_regions();
        let theta = 3;
        let mut graph = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial);
            b.build()
        };
        let geo0 = geo_for(&graph, seed, env.num_dcs());
        let profile0 = TrafficProfile::uniform(geo0.num_vertices(), 8.0);
        let state0 = HybridState::from_masters(
            &geo0, &env, geo0.locations.clone(), theta, profile0, 10.0,
        );
        let mut carried = Some(state0.into_parts());

        for ops in &windows {
            let events = window_events(&graph, ops);
            let delta = GraphDelta::from_events(&graph, &events);
            graph = graph.apply_delta(&delta);
            let geo = geo_for(&graph, seed, env.num_dcs());
            let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            let (core, th) = carried.take().unwrap();
            let (state, stats) = HybridState::resume_from_parts(
                core, th, &geo, &env, &delta, &profile,
            ).expect("resume must accept its own successor snapshot");
            // Zero-rebuild probe: the resume's work scales with the delta.
            prop_assert!(
                stats.work_items()
                    <= 8 * (delta.num_edge_changes() + delta.touched().len()) + 8,
                "delta work {} vs delta size {}",
                stats.work_items(), delta.num_edge_changes()
            );
            // The rebuild-and-compare: every count, mirror map, degree
            // table, load and cost aggregate against a fresh from_masters.
            state.validate_plan(&env).expect("resumed state diverged from rebuild");
            carried = Some(state.into_parts());
        }
    }

    /// Full-pipeline determinism: the adaptive trainer driven over the
    /// same delta stream at 1 and 4 threads must produce bit-identical
    /// masters after every window, and its carried state must survive the
    /// rebuild-and-compare each time.
    #[test]
    fn delta_pipeline_is_thread_deterministic((n, initial, windows, seed) in arb_stream()) {
        let env = ec2_eight_regions();
        let mut graph = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial);
            b.build()
        };
        let config = RlCutConfig::new(f64::INFINITY)
            .with_seed(seed)
            .with_theta(3)
            .with_fixed_sample_rate(0.2)
            .with_max_steps(2);
        let mut one = AdaptiveRlCut::new(config.clone().with_threads(1), None);
        let mut four = AdaptiveRlCut::new(config.with_threads(4), None);
        let t_opt = Duration::from_millis(100);

        let geo0 = geo_for(&graph, seed, env.num_dcs());
        let p0 = TrafficProfile::uniform(geo0.num_vertices(), 8.0);
        one.on_window(&geo0, &env, p0.clone(), 10.0, t_opt).expect("1-thread window 0");
        four.on_window(&geo0, &env, p0, 10.0, t_opt).expect("4-thread window 0");
        prop_assert_eq!(one.masters(), four.masters());

        for (i, ops) in windows.iter().enumerate() {
            let events = window_events(&graph, ops);
            let delta = GraphDelta::from_events(&graph, &events);
            graph = graph.apply_delta(&delta);
            let geo = geo_for(&graph, seed, env.num_dcs());
            let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            let r1 = one
                .on_window_delta(&geo, &env, &delta, profile.clone(), 10.0, t_opt)
                .unwrap_or_else(|e| panic!("1-thread window {i}: {e}"));
            let r4 = four
                .on_window_delta(&geo, &env, &delta, profile, 10.0, t_opt)
                .unwrap_or_else(|e| panic!("4-thread window {i}: {e}"));
            prop_assert!(r1.delta_stats.is_some(), "window {i} must take the delta path");
            prop_assert_eq!(
                r1.delta_stats, r4.delta_stats,
                "window {}: delta work must not depend on threads", i
            );
            prop_assert_eq!(
                one.masters(), four.masters(),
                "window {}: trained plans diverged across thread counts", i
            );
            prop_assert!(
                one.validate_carried(&geo, &env).expect("carried state diverged"),
                "window {} must carry a state", i
            );
        }
    }
}
