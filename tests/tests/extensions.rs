//! Integration tests for the beyond-the-paper extensions: WCC and weighted
//! SSSP through the engine, Leopard, plan/env persistence across crates,
//! and the recency-weighted sampler inside a full training run.

use geoengine::runner::AlgoOutput;
use geoengine::Algorithm;
use geograph::generators::{community_graph, CommunityConfig};
use geograph::locality::LocalityConfig;
use geograph::weights::EdgeWeights;
use geograph::{Dataset, GeoGraph};
use geopart::{HybridState, TrafficProfile};
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

fn setup() -> (GeoGraph, geosim::CloudEnv) {
    let geo = GeoGraph::from_graph(
        Dataset::LiveJournal.generate(0.0005, 21),
        &LocalityConfig::paper_default(21),
    );
    (geo, ec2_eight_regions())
}

#[test]
fn wcc_runs_through_the_engine_on_any_plan() {
    let (geo, env) = setup();
    let algo = Algorithm::wcc();
    let plan = HybridState::natural(&geo, &env, 8, algo.profile(&geo), 2.0);
    let report = geoengine::execute_plan(&geo, &env, plan.core(), None, &algo);
    let AlgoOutput::ComponentLabels(labels) = &report.output else { panic!() };
    assert_eq!(labels.len(), geo.num_vertices());
    // The engine's result must match the transform-crate reference
    // partition-wise.
    let reference = geograph::transform::weakly_connected_components(&geo.graph);
    for (i, j) in [(0usize, 1usize), (1, 2), (5, 17)] {
        assert_eq!(labels[i] == labels[j], reference[i] == reference[j]);
    }
    // Activity shrinks: later iterations cost no more than the first.
    if report.per_iteration_time.len() > 2 {
        let first = report.per_iteration_time[1]; // iteration 0 has no senders
        let last = *report.per_iteration_time.last().unwrap();
        assert!(last <= first * (1.0 + 1e-9), "WCC activity grew: {first} -> {last}");
    }
}

#[test]
fn weighted_sssp_agrees_with_unit_bfs() {
    let (geo, _) = setup();
    let weights = EdgeWeights::uniform(&geo.graph, 1);
    let source = geoengine::algorithms::sssp::default_source(&geo.graph);
    let dijkstra = geoengine::algorithms::dijkstra(&geo.graph, &weights, source, 1);
    let bfs = geoengine::algorithms::bfs_levels(&geo.graph, source);
    let reachable =
        bfs.distances.iter().filter(|&&d| d != geoengine::algorithms::sssp::UNREACHABLE).count();
    let settled: usize = dijkstra.rounds.iter().map(|r| r.len()).sum();
    assert_eq!(settled, reachable);
}

#[test]
fn community_labels_seed_locality_that_partitioners_exploit() {
    // With community == home DC, the natural placement is already good;
    // RLCut should keep it that way (not regress) while staying in budget.
    let cg = community_graph(&CommunityConfig {
        num_vertices: 3000,
        num_edges: 24_000,
        num_communities: 8,
        ..Default::default()
    });
    let locations: Vec<geograph::DcId> =
        cg.communities.iter().map(|&c| c as geograph::DcId).collect();
    let sizes: Vec<u64> =
        (0..3000u32).map(|v| 65536 + 256 * cg.graph.out_degree(v) as u64).collect();
    let geo = GeoGraph::new(cg.graph, locations, sizes, 8);
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let natural = HybridState::natural(&geo, &env, 8, profile.clone(), 10.0).objective(&env);
    let config = RlCutConfig::new(budget).with_seed(21).with_threads(2);
    let trained = rlcut::partition(&geo, &env, profile, 10.0, &config);
    let obj = trained.final_objective(&env);
    assert!(obj.transfer_time <= natural.transfer_time * (1.0 + 1e-9));
    assert!(obj.total_cost() <= budget);
}

#[test]
fn leopard_streams_and_evaluates() {
    let (geo, env) = setup();
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let leopard = geobase::Leopard::new(
        geo.num_vertices(),
        &geo.locations,
        geo.num_dcs,
        geobase::leopard::LeopardConfig::default(),
    );
    let plan = leopard.state(&geo, &env, profile.clone(), 10.0);
    // Bounded replication by construction.
    assert!(plan.replication_factor() <= 3.0 + 1e-9);
    // Better than random vertex-cut, worse than (or equal to) RLCut.
    let random = geobase::randpg(&geo, &env, profile.clone(), 10.0, 21);
    assert!(plan.objective(&env).transfer_time < random.objective(&env).transfer_time);
}

#[test]
fn plan_and_env_persistence_compose_across_crates() {
    let (geo, env) = setup();
    let dir = std::env::temp_dir().join("rlcut_ext_tests");
    std::fs::create_dir_all(&dir).unwrap();

    // Save the environment, reload it, and verify objectives agree.
    let env_path = dir.join("ec2.env");
    geosim::env_io::write_env(&env, &env_path).unwrap();
    let env2 = geosim::env_io::read_env(&env_path).unwrap();

    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let config = RlCutConfig::new(budget).with_seed(5).with_threads(2);
    let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);

    let plan_path = dir.join("trained.plan");
    geopart::plan_io::save_assignment(result.state.core().masters(), &plan_path).unwrap();
    let masters = geopart::plan_io::load_assignment(&plan_path).unwrap();

    let rebuilt =
        HybridState::from_masters(&geo, &env2, masters, result.state.theta(), profile, 10.0);
    let a = result.final_objective(&env);
    let b = rebuilt.objective(&env2);
    assert!((a.transfer_time - b.transfer_time).abs() < 1e-12 * a.transfer_time.max(1e-12));
    assert!((a.total_cost() - b.total_cost()).abs() < 1e-9 * a.total_cost().max(1e-12));
    std::fs::remove_file(&env_path).ok();
    std::fs::remove_file(&plan_path).ok();
}

#[test]
fn recency_weighted_sampler_stays_within_budget_and_overhead() {
    let (geo, env) = setup();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let t_opt = std::time::Duration::from_millis(300);
    let mut config = RlCutConfig::new(budget).with_seed(6).with_threads(2).with_t_opt(t_opt);
    config.sampling_recency = Some(0.5);
    let result = rlcut::partition(&geo, &env, profile, 10.0, &config);
    assert!(result.final_objective(&env).total_cost() <= budget);
    let total: f64 = result.steps.iter().map(|s| s.duration.as_secs_f64()).sum();
    assert!(total < 3.0 * t_opt.as_secs_f64(), "overhead {total}");
}

#[test]
fn pattern_matching_traffic_consistency() {
    // The general pattern matcher agrees with the triangle specialization
    // used by the SI workload.
    let (geo, _) = setup();
    let triangles = geoengine::algorithms::triangle_count(&geo.graph);
    let embeddings = geoengine::algorithms::count_embeddings(
        &geo.graph,
        &geoengine::algorithms::Pattern::triangle(),
    );
    assert_eq!(embeddings, 3 * triangles);
}
