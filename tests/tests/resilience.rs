//! Fault-injection and recovery invariants, cross-crate: evacuation
//! clears dark DCs without breaking plan validity, checkpoint restore is
//! bit-exact, recovery beats cold retraining, and everything is
//! deterministic per seed.

use geograph::generators::{rmat, RmatConfig};
use geograph::locality::LocalityConfig;
use geograph::{DcId, GeoGraph};
use geopart::{HybridState, MoveScratch, TrafficProfile};
use geosim::faults::{FaultModel, FaultSchedule};
use geosim::regions::ec2_eight_regions;
use geosim::CloudEnv;
use proptest::prelude::*;
use rlcut::{train_under_faults, RlCutConfig, TrainerCheckpoint, TrainerSession};

fn arb_rmat_geo() -> impl Strategy<Value = GeoGraph> {
    (8usize..24, 4usize..12, 0u64..1000).prop_map(|(n_scale, density, seed)| {
        let n = n_scale * 32;
        let g = rmat(&RmatConfig::social(n, n * density), seed);
        GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed ^ 0xa5a5))
    })
}

/// A dead-DC mask over 8 DCs with at least one survivor.
fn arb_dead_mask() -> impl Strategy<Value = Vec<bool>> {
    (0u16..255).prop_map(|bits| (0..8).map(|i| bits & (1 << i) != 0).collect())
}

fn natural<'g>(geo: &'g GeoGraph, env: &CloudEnv, theta: usize) -> HybridState<'g> {
    HybridState::from_masters(
        geo,
        env,
        geo.locations.clone(),
        theta,
        TrafficProfile::uniform(geo.num_vertices(), 8.0),
        10.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After `evacuate`, no master and no mirror remains on any dead DC,
    /// and the plan still passes the full rebuild-and-compare validation.
    #[test]
    fn evacuation_clears_dead_dcs_and_preserves_validity(
        geo in arb_rmat_geo(),
        theta in 2usize..12,
        dead in arb_dead_mask(),
    ) {
        let env = ec2_eight_regions();
        let mut state = natural(&geo, &env, theta);
        let mut scratch = MoveScratch::new();
        let report = state.evacuate(&env, &dead, &mut scratch).unwrap();

        let dead_mask: u64 =
            dead.iter().enumerate().filter(|(_, &d)| d).map(|(i, _)| 1u64 << i).sum();
        for v in 0..geo.num_vertices() as u32 {
            prop_assert!(
                !dead[state.master(v) as usize],
                "v{} master still on dead DC {}", v, state.master(v)
            );
            prop_assert_eq!(
                state.core().mirror_mask(v) & dead_mask, 0,
                "v{} keeps a mirror on a dead DC", v
            );
        }
        prop_assert!(state.validate_against_faults(&dead).is_ok());
        prop_assert!(state.validate_plan(&env).is_ok(), "evacuation corrupted the plan");
        // Moved exactly the masters that started on dead DCs.
        let expected =
            geo.locations.iter().filter(|&&m| dead[m as usize]).count();
        prop_assert_eq!(report.vertices_moved, expected);
    }

    /// Evacuation is deterministic: same state, same dead set ⇒ identical
    /// masters.
    #[test]
    fn evacuation_is_deterministic(
        geo in arb_rmat_geo(),
        dead in arb_dead_mask(),
    ) {
        let env = ec2_eight_regions();
        let mut a = natural(&geo, &env, 6);
        let mut b = natural(&geo, &env, 6);
        let mut scratch = MoveScratch::new();
        a.evacuate(&env, &dead, &mut scratch).unwrap();
        b.evacuate(&env, &dead, &mut scratch).unwrap();
        prop_assert_eq!(a.core().masters(), b.core().masters());
    }
}

fn test_setup(n: usize, seed: u64) -> (GeoGraph, CloudEnv, f64) {
    let g = rmat(&RmatConfig::social(n, n * 8), seed);
    let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    (geo, env, budget)
}

/// checkpoint → serialize → restore → one step must be **bit-identical**
/// to the uninterrupted run: same masters, same next checkpoint bytes.
/// (Uniform 8.0 profile keeps every load sum dyadic, so the from-masters
/// rebuild reproduces the incremental state exactly; the movement cost is
/// carried through the checkpoint.)
#[test]
fn restore_then_step_is_bit_identical_to_uninterrupted() {
    let (geo, env, budget) = test_setup(512, 21);
    let config =
        RlCutConfig::new(budget).with_seed(21).with_fixed_sample_rate(1.0).with_max_steps(12);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let state = HybridState::natural(&geo, &env, 80, profile.clone(), 10.0);

    let mut uninterrupted = TrainerSession::new(&geo, &env, state, config.clone());
    for _ in 0..5 {
        uninterrupted.step(&env);
    }
    let bytes = uninterrupted.checkpoint().to_bytes();
    uninterrupted.step(&env);

    let restored_cp = TrainerCheckpoint::from_bytes(&bytes).unwrap();
    let mut resumed = TrainerSession::resume(&geo, &env, &restored_cp, config, profile, 10.0);
    assert_eq!(resumed.step_index(), 5);
    assert_eq!(resumed.masters(), restored_cp.masters);
    resumed.step(&env);

    assert_eq!(resumed.masters(), uninterrupted.masters(), "post-step masters diverged");
    assert_eq!(
        resumed.checkpoint().to_bytes(),
        uninterrupted.checkpoint().to_bytes(),
        "post-step checkpoints are not byte-identical"
    );
}

/// The headline robustness claim: after a DC outage, checkpoint-restore +
/// evacuation reaches within 5 % of the no-fault objective in at most half
/// the training steps a cold restart needs.
#[test]
fn recovery_beats_cold_restart_by_2x() {
    let (geo, env, budget) = test_setup(2048, 42);
    let max_steps = 30;
    let config = RlCutConfig::new(budget)
        .with_seed(42)
        .with_fixed_sample_rate(1.0)
        .with_max_steps(max_steps);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
    let initial = || HybridState::natural(&geo, &env, theta, profile.clone(), 10.0);

    let no_fault = rlcut::trainer::train(&geo, &env, initial(), &config);
    let target = no_fault.final_objective(&env).transfer_time * 1.05;

    // Kill the DC holding the most trained masters at step 10.
    let mut per_dc = [0usize; 8];
    for &m in no_fault.state.core().masters() {
        per_dc[m as usize] += 1;
    }
    let victim = (0..8).max_by_key(|&d| per_dc[d]).unwrap() as DcId;
    let fault_step = 10u64;
    let schedule = FaultSchedule::single_outage(env.num_dcs(), 200, victim, fault_step);

    let steps_to_reach = |steps: &[rlcut::StepStats], from: usize| -> usize {
        steps
            .iter()
            .enumerate()
            .skip(from)
            .find(|(_, s)| s.transfer_time <= target)
            .map(|(i, _)| i + 1 - from)
            .unwrap_or(max_steps)
    };

    let (healed, report) =
        train_under_faults(&geo, &env, initial(), &config, &schedule, 2).unwrap();
    assert_eq!(report.crash_recoveries, 1);
    assert!(report.evacuated_vertices > 0);
    let recovery_steps = steps_to_reach(&healed.steps, fault_step as usize);

    let view = schedule.view_at(&env, fault_step);
    let mut cold_state = initial();
    let mut scratch = MoveScratch::new();
    cold_state.evacuate(view.env(), view.dead_flags(), &mut scratch).unwrap();
    let cold = rlcut::trainer::train(&geo, view.env(), cold_state, &config);
    let cold_steps = steps_to_reach(&cold.steps, 0);

    assert!(
        2 * recovery_steps <= cold_steps,
        "recovery took {recovery_steps} post-fault steps, cold restart {cold_steps}; \
         expected at least a 2x win"
    );
    // And the healed run actually got back to the no-fault quality.
    assert!(
        healed.final_objective(view.env()).transfer_time <= target,
        "healed objective {} exceeds target {target}",
        healed.final_objective(view.env()).transfer_time
    );
}

/// Same seed ⇒ byte-identical fault schedule, evacuation result, and
/// checkpoint.
#[test]
fn fault_pipeline_is_deterministic_per_seed() {
    let (geo, env, budget) = test_setup(512, 7);

    let model = FaultModel::default();
    let s1 = FaultSchedule::generate(7, env.num_dcs(), 500, &model);
    let s2 = FaultSchedule::generate(7, env.num_dcs(), 500, &model);
    assert_eq!(s1.to_text(), s2.to_text(), "schedule generation is not deterministic");
    assert_ne!(
        s1.to_text(),
        FaultSchedule::generate(8, env.num_dcs(), 500, &model).to_text(),
        "different seeds should differ (vanishingly unlikely to collide)"
    );

    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let dead = {
        let mut d = vec![false; env.num_dcs()];
        d[2] = true;
        d
    };
    let evac = |_: ()| {
        let mut st = HybridState::natural(&geo, &env, 50, profile.clone(), 10.0);
        let mut scratch = MoveScratch::new();
        st.evacuate(&env, &dead, &mut scratch).unwrap();
        st.core().masters().to_vec()
    };
    assert_eq!(evac(()), evac(()));

    let config =
        RlCutConfig::new(budget).with_seed(7).with_fixed_sample_rate(1.0).with_max_steps(6);
    let cp = |_: ()| {
        let st = HybridState::natural(&geo, &env, 50, profile.clone(), 10.0);
        let mut s = TrainerSession::new(&geo, &env, st, config.clone());
        for _ in 0..4 {
            s.step(&env);
        }
        s.checkpoint().to_bytes()
    };
    assert_eq!(cp(()), cp(()), "checkpoints are not byte-identical across runs");
}
