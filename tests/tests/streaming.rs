//! Property tests of the paper-scale graph substrate: streamed chunked CSR
//! ingest must be bit-identical to the staged builders at any thread count
//! and chunking, and the delta-compressed cold-adjacency representation
//! must be observationally equal to the raw CSR on every row shape.

use geograph::generators::{rmat_streamed, RmatConfig};
use geograph::{
    build_chunked, ChunkedEdges, CompressPolicy, CompressedGraph, Graph, GraphBuilder, OffsetWidth,
    ScopedPool, ShardSpec, ShardView, StreamConfig, VertexId,
};
use proptest::prelude::*;

/// A deterministic in-memory chunk source over a pre-split edge list.
struct VecChunks {
    n: usize,
    chunks: Vec<Vec<(VertexId, VertexId)>>,
}

impl VecChunks {
    /// Splits `edges` into `num_chunks` contiguous runs.
    fn split(n: usize, edges: &[(VertexId, VertexId)], num_chunks: usize) -> VecChunks {
        let per = edges.len().div_ceil(num_chunks.max(1)).max(1);
        VecChunks { n, chunks: edges.chunks(per).map(<[_]>::to_vec).collect() }
    }
}

impl ChunkedEdges for VecChunks {
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn num_chunks(&self) -> usize {
        self.chunks.len().max(1)
    }
    fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
        if let Some(c) = self.chunks.get(chunk) {
            for &(u, v) in c {
                sink(u, v);
            }
        }
    }
}

/// `(n, edges)` with duplicate- and self-loop-heavy edge lists: endpoints
/// are drawn from a small range so collisions are the norm, not the
/// exception.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..120);
        (Just(n), edges)
    })
}

proptest! {
    /// The verify.sh-gated contract: for any edge list (duplicates and
    /// self-loops included), any chunking, and any thread count, the
    /// streamed two-pass build equals `Graph::from_edges` bit-for-bit in
    /// verbatim mode and `GraphBuilder::build` in cleaned mode.
    #[test]
    fn streamed_build_matches_staged((n, edges) in arb_edges()) {
        let staged = Graph::from_edges(n, &edges);
        let built = {
            let mut b = GraphBuilder::new(n);
            for &(u, v) in &edges {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        };
        for num_chunks in [1usize, 3, 7] {
            let src = VecChunks::split(n, &edges, num_chunks);
            for threads in [1usize, 2, 4, 8] {
                let pool = ScopedPool(threads);
                let (verbatim, _) = build_chunked(&src, StreamConfig::verbatim(), &pool)
                    .expect("verbatim build");
                prop_assert_eq!(
                    &verbatim, &staged,
                    "verbatim diverged at {} chunks / {} threads", num_chunks, threads
                );
                let (cleaned, report) = build_chunked(&src, StreamConfig::cleaned(), &pool)
                    .expect("cleaned build");
                prop_assert_eq!(
                    &cleaned, &built,
                    "cleaned diverged at {} chunks / {} threads", num_chunks, threads
                );
                prop_assert_eq!(report.edges, cleaned.num_edges());
            }
        }
    }

    /// Compressed adjacency is observationally equal to the raw CSR for
    /// every row — degrees, neighbor runs (duplicates preserved), and the
    /// exact round-trip — under every hot/cold split.
    #[test]
    fn compressed_matches_raw((n, edges) in arb_edges()) {
        let graph = Graph::from_edges(n, &edges);
        for policy in [
            CompressPolicy::all_cold(),
            CompressPolicy::auto(),
            CompressPolicy { hot_min_degree: 1 },
        ] {
            let compressed = CompressedGraph::from_graph(&graph, policy);
            let mut buf = Vec::new();
            for v in 0..n as VertexId {
                prop_assert_eq!(compressed.out_degree(v), graph.out_degree(v));
                prop_assert_eq!(compressed.in_degree(v), graph.in_degree(v));
                prop_assert_eq!(compressed.out_neighbors(v, &mut buf), graph.out_neighbors(v));
                let iterated: Vec<VertexId> = compressed.in_neighbors_iter(v).collect();
                prop_assert_eq!(&iterated[..], graph.in_neighbors(v));
            }
            prop_assert_eq!(&compressed.to_graph(), &graph);
        }
    }

    /// Offset width is representation, not content: a graph force-widened
    /// to u64 offsets is equal (value semantics) to its narrow twin, the
    /// widened twin round-trips back to narrow bit-for-bit, both encode to
    /// the identical canonical wire blob, and every derived view — staged,
    /// streamed at any chunking/threading, compressed — agrees regardless
    /// of which width it was built from.
    #[test]
    fn narrow_equals_wide_across_every_path((n, edges) in arb_edges()) {
        let narrow = Graph::from_edges(n, &edges);
        prop_assert_eq!(narrow.offset_width(), OffsetWidth::U32);
        let wide = narrow.clone().with_offset_width(OffsetWidth::U64).expect("widening");
        prop_assert_eq!(wide.offset_width(), OffsetWidth::U64);
        prop_assert_eq!(&wide, &narrow);
        let renarrowed = wide.clone().with_offset_width(OffsetWidth::U32).expect("re-narrowing");
        prop_assert_eq!(renarrowed.offset_width(), OffsetWidth::U32);
        prop_assert_eq!(&renarrowed, &narrow);
        let mut wide_blob = Vec::new();
        let mut narrow_blob = Vec::new();
        geograph::wire::encode_graph(&wide, &mut wide_blob);
        geograph::wire::encode_graph(&narrow, &mut narrow_blob);
        prop_assert_eq!(wide_blob, narrow_blob);
        for num_chunks in [1usize, 3, 7] {
            let src = VecChunks::split(n, &edges, num_chunks);
            for threads in [1usize, 2, 4, 8] {
                let (streamed, _) =
                    build_chunked(&src, StreamConfig::verbatim(), &ScopedPool(threads))
                        .expect("streamed build");
                prop_assert_eq!(
                    &streamed, &wide,
                    "streamed vs wide diverged at {} chunks / {} threads", num_chunks, threads
                );
            }
        }
        let from_narrow = CompressedGraph::from_graph(&narrow, CompressPolicy::auto());
        let from_wide = CompressedGraph::from_graph(&wide, CompressPolicy::auto());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for v in 0..n as VertexId {
            prop_assert_eq!(
                from_narrow.out_neighbors(v, &mut a),
                from_wide.out_neighbors(v, &mut b)
            );
        }
        prop_assert_eq!(&from_wide.to_graph(), &narrow);
    }

    /// The shard-resident ingest contract at property-test scale: for any
    /// edge list, cleaning mode, and shard count, `ShardView::build_streamed`
    /// over the chunked source equals `ShardView::build` over the staged
    /// graph — structural equality covers the local CSR, the owned range,
    /// and the sorted ghost fringe.
    #[test]
    fn shard_streamed_matches_staged_views((n, edges) in arb_edges()) {
        for (cfg, staged) in [
            (StreamConfig::verbatim(), Graph::from_edges(n, &edges)),
            (StreamConfig::cleaned(), {
                let mut b = GraphBuilder::new(n);
                for &(u, v) in &edges {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            }),
        ] {
            let src = VecChunks::split(n, &edges, 3);
            for shards in [1usize, 2, 4, 8] {
                let spec = ShardSpec::contiguous(n, shards);
                for s in 0..shards {
                    let (view, report) =
                        ShardView::build_streamed(&src, cfg, &spec, s, &ScopedPool(2))
                            .expect("shard-resident build");
                    let reference = ShardView::build(&staged, &spec, s);
                    prop_assert_eq!(
                        &view, &reference,
                        "shard {}/{} diverged (dedup={})", s, shards, cfg.dedup
                    );
                    prop_assert!(view.heap_bytes() <= report.peak_bytes());
                }
            }
        }
    }
}

#[test]
fn streamed_rmat_deterministic_across_thread_counts() {
    let config = RmatConfig::social(1 << 11, 1 << 14);
    let (reference, report) = rmat_streamed(&config, 9, 1 << 10, &ScopedPool(1)).unwrap();
    assert!(report.edges > 0);
    for threads in [2usize, 4, 8] {
        let (g, r) = rmat_streamed(&config, 9, 1 << 10, &ScopedPool(threads)).unwrap();
        assert_eq!(g, reference, "streamed R-MAT diverged at {threads} threads");
        assert_eq!(r.edges, report.edges);
    }
}

#[test]
fn compressed_handles_empty_and_max_degree_rows() {
    // Vertex 0 is a maximal-degree hub in both directions; vertices past
    // the fan are fully isolated (empty rows in both directions).
    let n = 600usize;
    let mut edges = Vec::new();
    for v in 1..300 as VertexId {
        edges.push((0, v));
        edges.push((v, 0));
    }
    let graph = Graph::from_edges(n, &edges);
    for policy in [CompressPolicy::all_cold(), CompressPolicy::auto()] {
        let compressed = CompressedGraph::from_graph(&graph, policy);
        let mut buf = Vec::new();
        assert_eq!(compressed.out_neighbors(0, &mut buf), graph.out_neighbors(0));
        assert_eq!(compressed.out_degree(0), 299);
        for v in 300..n as VertexId {
            assert_eq!(compressed.out_degree(v), 0);
            assert!(compressed.out_neighbors(v, &mut buf).is_empty());
            assert!(compressed.in_neighbors_iter(v).next().is_none());
        }
        assert_eq!(compressed.to_graph(), graph);
    }
}

#[test]
fn compression_shrinks_a_dense_tail() {
    // Degree ~12 per vertex with mostly-local targets: gap encoding packs
    // each neighbor into 1–2 bytes vs 4 raw, comfortably beating the
    // second offset array the compressed form carries. (The sparse hub
    // fixture above is the opposite regime — per-vertex overhead dominates
    // at degree 1 and compression rightly loses there.)
    let n = 600usize;
    let mut edges = Vec::new();
    for v in 0..n as VertexId {
        for k in 1..=12 {
            edges.push((v, (v + k) % n as VertexId));
        }
    }
    let graph = Graph::from_edges(n, &edges);
    let cold = CompressedGraph::from_graph(&graph, CompressPolicy::all_cold());
    assert!(
        cold.heap_bytes() < graph.heap_bytes(),
        "compression saved nothing: {} vs raw {}",
        cold.heap_bytes(),
        graph.heap_bytes()
    );
    assert_eq!(cold.to_graph(), graph);
}

#[test]
fn empty_graph_streams_and_compresses() {
    let src = VecChunks::split(5, &[], 1);
    let (g, report) = build_chunked(&src, StreamConfig::cleaned(), &ScopedPool(4)).unwrap();
    assert_eq!(g, Graph::empty(5));
    assert_eq!(report.edges, 0);
    let compressed = CompressedGraph::from_graph(&g, CompressPolicy::auto());
    assert_eq!(compressed.to_graph(), g);
}
