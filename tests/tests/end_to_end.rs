//! End-to-end pipeline: dataset analog → geo assignment → every
//! partitioner → analytics execution → paper invariants.

use geobase::ginger::GingerConfig;
use geobase::PlanKind;
use geoengine::runner::AlgoOutput;
use geoengine::Algorithm;
use geograph::locality::LocalityConfig;
use geograph::{Dataset, GeoGraph};
use geosim::regions::ec2_eight_regions;
use geosim::CloudEnv;
use rlcut::RlCutConfig;

fn setup() -> (GeoGraph, CloudEnv, f64) {
    let geo =
        GeoGraph::from_graph(Dataset::Orkut.generate(0.001, 5), &LocalityConfig::paper_default(5));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    (geo, env, budget)
}

fn all_plans<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    budget: f64,
) -> Vec<(&'static str, PlanKind<'g>)> {
    let algo = Algorithm::pagerank();
    let profile = algo.profile(geo);
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
    vec![
        ("RandPG", PlanKind::Vertex(geobase::randpg(geo, env, profile.clone(), 10.0, 5))),
        (
            "Geo-Cut",
            PlanKind::Vertex(geobase::geocut(
                geo,
                env,
                geobase::geocut::GeoCutConfig::new(budget),
                profile.clone(),
                10.0,
            )),
        ),
        ("HashPL", PlanKind::Hybrid(geobase::hashpl(geo, env, theta, profile.clone(), 10.0, 5))),
        (
            "Ginger",
            PlanKind::Hybrid(geobase::ginger(
                geo,
                env,
                GingerConfig::new(theta, 5),
                profile.clone(),
                10.0,
            )),
        ),
        (
            "Revolver",
            PlanKind::Edge(geobase::revolver(
                geo,
                env,
                geobase::revolver::RevolverConfig::default(),
                profile.clone(),
                10.0,
            )),
        ),
        (
            "Spinner",
            PlanKind::Edge(
                geobase::Spinner::partition(geo, geobase::spinner::SpinnerConfig::default())
                    .state(geo, env, &profile, 10.0),
            ),
        ),
        (
            "RLCut",
            PlanKind::Hybrid(
                rlcut::partition(
                    geo,
                    env,
                    profile,
                    10.0,
                    &RlCutConfig::new(budget).with_seed(5).with_threads(2),
                )
                .state,
            ),
        ),
    ]
}

#[test]
fn analytics_results_identical_across_all_plans() {
    // Partitioning changes where data lives, never what is computed.
    let (geo, env, budget) = setup();
    let plans = all_plans(&geo, &env, budget);
    for algo in [Algorithm::pagerank(), Algorithm::sssp(&geo), Algorithm::subgraph_iso()] {
        let reference = plans[0].1.execute(&geo, &env, &algo).output;
        for (name, plan) in &plans[1..] {
            let output = plan.execute(&geo, &env, &algo).output;
            assert_eq!(output, reference, "{name} changed the {} result", algo.name());
        }
    }
}

#[test]
fn rlcut_beats_every_feasible_method_on_transfer_time() {
    let (geo, env, budget) = setup();
    let plans = all_plans(&geo, &env, budget);
    let rlcut = plans.last().unwrap().1.objective(&env);
    assert!(rlcut.total_cost() <= budget);
    for (name, plan) in &plans[..plans.len() - 1] {
        let obj = plan.objective(&env);
        if obj.total_cost() <= budget {
            assert!(
                rlcut.transfer_time <= obj.transfer_time * 1.05,
                "{name} (feasible, {}) beat RLCut ({})",
                obj.transfer_time,
                rlcut.transfer_time
            );
        }
    }
}

#[test]
fn hybrid_cut_methods_have_lowest_replication() {
    let (geo, env, budget) = setup();
    let plans = all_plans(&geo, &env, budget);
    let randpg_lambda = plans[0].1.replication_factor();
    for (name, plan) in &plans {
        if matches!(plan, PlanKind::Hybrid(_)) {
            assert!(
                plan.replication_factor() < randpg_lambda,
                "{name} λ {} vs RandPG λ {randpg_lambda}",
                plan.replication_factor()
            );
        }
    }
}

#[test]
fn pagerank_output_is_a_probability_distribution() {
    let (geo, env, budget) = setup();
    let plans = all_plans(&geo, &env, budget);
    let algo = Algorithm::pagerank();
    let AlgoOutput::Ranks(ranks) = plans.last().unwrap().1.execute(&geo, &env, &algo).output else {
        panic!("expected ranks")
    };
    let sum: f64 = ranks.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "ranks sum to {sum}");
    assert!(ranks.iter().all(|&r| r >= 0.0));
}

#[test]
fn per_iteration_times_sum_to_report_total() {
    let (geo, env, budget) = setup();
    let plans = all_plans(&geo, &env, budget);
    let algo = Algorithm::pagerank();
    for (name, plan) in &plans {
        let report = plan.execute(&geo, &env, &algo);
        let sum: f64 = report.per_iteration_time.iter().sum();
        assert!(
            (sum - report.transfer_time).abs() <= 1e-9 * report.transfer_time.max(1e-12),
            "{name}: per-iteration sum {sum} vs total {}",
            report.transfer_time
        );
    }
}
