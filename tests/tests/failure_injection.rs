//! Failure-injection and boundary tests: malformed inputs, degenerate
//! graphs, extreme configurations — the system must fail loudly (typed
//! errors or panics with clear messages), never silently corrupt a plan.

use geograph::locality::LocalityConfig;
use geograph::{GeoGraph, Graph};
use geopart::{HybridState, TrafficProfile};
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;
use std::io::Cursor;

#[test]
fn malformed_edge_lists_are_typed_errors() {
    for bad in ["1 two\n", "only_one_token\n", "1 2 extra is fine\nnonsense\n"] {
        let result = geograph::io::parse_edge_list(Cursor::new(bad));
        match result {
            Err(geograph::io::IoError::Parse { line, .. }) => assert!(line >= 1),
            Err(other) => panic!("wrong error type for {bad:?}: {other:?}"),
            Ok(g) => {
                // The third case: trailing tokens are allowed, the
                // "nonsense" line must error — so Ok is only fine if it
                // never reached it.
                panic!("accepted malformed input {bad:?} as {} edges", g.num_edges())
            }
        }
    }
}

#[test]
fn corrupt_plans_never_load() {
    let dir = std::env::temp_dir().join("rlcut_failure_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.plan");
    geopart::plan_io::save_assignment(&[0, 1, 2, 3, 4, 5, 6, 7], &path).unwrap();
    let original = std::fs::read_to_string(&path).unwrap();

    // Bit-flip every data line one at a time; every mutation must be caught.
    for (i, line) in original.lines().enumerate().skip(1) {
        let flipped = if line == "0" { "1" } else { "0" };
        let mutated: Vec<String> = original
            .lines()
            .enumerate()
            .map(|(j, l)| if j == i { flipped.to_string() } else { l.to_string() })
            .collect();
        std::fs::write(&path, mutated.join("\n")).unwrap();
        assert!(
            geopart::plan_io::load_assignment(&path).is_err(),
            "tampered line {i} loaded silently"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_and_singleton_graphs_survive_the_pipeline() {
    let env = ec2_eight_regions();
    for n in [1usize, 2] {
        let geo = GeoGraph::new(Graph::empty(n), vec![0; n], vec![65536; n], 8);
        let profile = TrafficProfile::uniform(n, 8.0);
        let state = HybridState::natural(&geo, &env, 8, profile.clone(), 10.0);
        let obj = state.objective(&env);
        assert_eq!(obj.transfer_time, 0.0);
        // Training on a traffic-free graph converges instantly.
        let config = RlCutConfig::new(1.0).with_seed(1).with_threads(2);
        let result = rlcut::partition(&geo, &env, profile, 10.0, &config);
        assert!(result.converged || result.steps.is_empty());
        assert_eq!(result.final_objective(&env).transfer_time, 0.0);
    }
}

#[test]
fn self_loop_heavy_input_is_cleaned_not_crashed() {
    // Builders drop self-loops; the partitioning stack must behave as if
    // they never existed.
    let mut b = geograph::GraphBuilder::new(16);
    for v in 0..16u32 {
        b.add_edge(v, v);
        b.add_edge(v, (v + 1) % 16);
    }
    let g = b.build();
    assert_eq!(g.num_edges(), 16, "self-loops must be dropped");
    let geo = GeoGraph::from_graph(g, &LocalityConfig::uniform(4, 1));
    let env = geosim::CloudEnv::new(
        (0..4)
            .map(|i| geosim::Datacenter::from_gb_units(&format!("d{i}"), 1.0, 2.0, 0.1))
            .collect(),
    );
    let profile = TrafficProfile::uniform(16, 8.0);
    let mut state = HybridState::natural(&geo, &env, 2, profile, 10.0);
    for v in 0..16u32 {
        state.apply_move(&env, v, (v % 4) as u8);
    }
    state.check_consistency(&env);
}

#[test]
fn zero_budget_yields_natural_placement() {
    // With budget 0 every master move is infeasible: the best feasible
    // plan is the natural one (movement cost 0).
    let g = geograph::generators::erdos_renyi(500, 3000, 2);
    let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(2));
    let env = ec2_eight_regions();
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let natural = HybridState::natural(&geo, &env, 8, profile.clone(), 10.0).objective(&env);
    // Natural runtime cost is nonzero, so a 0 budget is unsatisfiable;
    // the trainer then returns the lowest-cost plan it saw, which must
    // cost no more than natural.
    let config = RlCutConfig::new(0.0).with_seed(2).with_threads(2);
    let result = rlcut::partition(&geo, &env, profile, 10.0, &config);
    assert!(result.final_objective(&env).total_cost() <= natural.total_cost() * (1.0 + 1e-9));
}

#[test]
fn single_dc_environment_degenerates_gracefully() {
    let g = geograph::generators::erdos_renyi(200, 1000, 3);
    let geo = GeoGraph::from_graph(g, &LocalityConfig::uniform(1, 3));
    let env = geosim::CloudEnv::new(vec![geosim::Datacenter::from_gb_units("solo", 1.0, 2.0, 0.1)]);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let state = HybridState::natural(&geo, &env, 4, profile.clone(), 10.0);
    assert_eq!(state.objective(&env).transfer_time, 0.0);
    let config = RlCutConfig::new(1.0).with_seed(3).with_threads(2);
    let result = rlcut::partition(&geo, &env, profile, 10.0, &config);
    assert_eq!(result.final_objective(&env).transfer_time, 0.0);
    assert_eq!(result.total_migrations(), 0);
}

#[test]
fn env_file_boundary_cases() {
    // Negative price rejected.
    assert!(geosim::env_io::parse_env(Cursor::new("a 1 1 -0.1\n")).is_err());
    // 65 DCs exceed the bitmask limit — the parser rejects them with a
    // typed error before the CloudEnv constructor's assert can trip.
    let many: String = (0..65).map(|i| format!("dc{i} 1 1 0.1\n")).collect();
    match geosim::env_io::parse_env(Cursor::new(many.as_bytes())) {
        Err(geosim::env_io::EnvIoError::TooManyDcs { count, max }) => {
            assert_eq!(count, 65);
            assert_eq!(max, geograph::MAX_DCS);
        }
        other => panic!("65-DC environment must be rejected with TooManyDcs, got {other:?}"),
    }
}
