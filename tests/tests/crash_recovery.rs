//! Kill-at-random-point crash-recovery harness — the headline durability
//! proof.
//!
//! One multi-window durable run (graph deltas, a mid-run DC outage, a
//! snapshot mid-stream) produces a WAL; the harness then simulates a
//! process kill at 100+ seeded crash points — after every record boundary
//! and at seeded mid-record truncations — by truncating a copy of the log
//! there and recovering. Every recovery must land on a committed window
//! boundary with masters bit-identical to the uninterrupted run at that
//! boundary, the movement-cost accumulator equal to the last `f64` bit,
//! and the recovered placement passing `validate_plan`.

use std::path::{Path, PathBuf};
use std::time::Duration;

use geograph::dynamic::{apply_events, split_for_dynamic};
use geograph::generators::preferential::preferential_attachment_edges;
use geograph::locality::{assign_locations, LocalityConfig};
use geograph::{DcId, GeoGraph, GraphBuilder, GraphDelta};
use geopart::TrafficProfile;
use geosim::faults::FaultSchedule;
use geosim::regions::ec2_eight_regions;
use rand::prelude::*;
use rlcut::{DurableAdaptive, RlCutConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlcut_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// theta pinned and the sample rate fixed so the wall-clock scheduler
/// cannot make the reference and recovered runs diverge.
fn pinned_config() -> RlCutConfig {
    RlCutConfig::new(1.0)
        .with_seed(13)
        .with_threads(2)
        .with_theta(8)
        .with_fixed_sample_rate(0.2)
        .with_max_steps(3)
}

struct Workload {
    geo0: GeoGraph,
    steps: Vec<(GraphDelta, Vec<DcId>, Vec<u64>)>,
}

fn workload() -> Workload {
    let n = 400;
    let edges = preferential_attachment_edges(n, 3, 23);
    let (initial, stream) = split_for_dynamic(&edges, n, 0.6, 10_000);
    let windows: Vec<_> = stream.windows(1_000).collect();
    assert!(windows.len() >= 3, "need several delta windows, got {}", windows.len());
    let full_graph = {
        let mut b = GraphBuilder::new(n);
        b.add_edges(initial.edges());
        apply_events(&mut b, stream.events());
        b.build()
    };
    let cfg = LocalityConfig::paper_default(23);
    let locations = assign_locations(&full_graph, &cfg);
    let sizes: Vec<u64> = (0..full_graph.num_vertices()).map(|_| 2048).collect();

    let mut graph = initial;
    let geo0 = GeoGraph::new(
        graph.clone(),
        locations[..graph.num_vertices()].to_vec(),
        sizes[..graph.num_vertices()].to_vec(),
        cfg.num_dcs,
    );
    let mut steps = Vec::new();
    for window in &windows {
        let delta = GraphDelta::from_events(&graph, window);
        let old_n = graph.num_vertices();
        graph = graph.apply_delta(&delta);
        let new_n = graph.num_vertices();
        steps.push((delta, locations[old_n..new_n].to_vec(), sizes[old_n..new_n].to_vec()));
    }
    Workload { geo0, steps }
}

#[test]
fn kill_at_every_record_boundary_and_mid_record() {
    let w = workload();
    let env = ec2_eight_regions();
    let t_opt = Duration::from_secs(60);
    let base = tmp_dir("base");
    // A DC outage lands before window 2, so the log carries a fault
    // window (rebuild + stranded-master reseed) among the incremental
    // ones.
    let schedule = FaultSchedule::single_outage(8, 100, 2, 2);

    // The uninterrupted run. expected[j] = (masters, movement-cost bits)
    // at the boundary where `next_window == j`; index 0 is genesis.
    let mut expected: Vec<(Vec<DcId>, u64)> = vec![(w.geo0.locations.clone(), 0)];
    let mut durable =
        DurableAdaptive::create(&base, pinned_config(), Some(0.4), w.geo0.clone(), &env, 2)
            .expect("create durable dir");
    let p0 = TrafficProfile::uniform(w.geo0.num_vertices(), 8.0);
    durable.window(&env, None, &[], &[], p0, 10.0, t_opt).expect("window 0");
    let push_state = |d: &DurableAdaptive, out: &mut Vec<(Vec<DcId>, u64)>| {
        let (core, _) = d.inner().carried_parts().expect("committed window carries state");
        out.push((core.masters().to_vec(), core.movement_cost().to_bits()));
    };
    push_state(&durable, &mut expected);
    for (i, (delta, locs, sizes)) in w.steps.iter().enumerate() {
        let step = (i + 1) as u64;
        if schedule.changes_at(step) {
            let view = schedule.view_at(&env, step);
            if view.any_dead() {
                durable.note_fault(view.dead_flags());
            }
        }
        let p = TrafficProfile::uniform(delta.new_num_vertices(), 8.0);
        durable
            .window(&env, Some(delta), locs, sizes, p, 10.0, t_opt)
            .unwrap_or_else(|e| panic!("delta window {i}: {e}"));
        push_state(&durable, &mut expected);
    }
    drop(durable); // kill the "process"; committed state is on disk

    // Enumerate crash points from the log itself: every record boundary
    // plus seeded mid-record truncations.
    let (records, report) = geodur::wal::load(&base).expect("scan base log");
    assert_eq!(report.torn_tail_bytes, 0, "clean shutdown leaves no torn tail");
    let segments = geodur::wal::segment_paths(&base).expect("list segments");
    assert_eq!(segments.len(), 1, "workload should fit one segment");
    let seg_name = segments[0].1.file_name().unwrap().to_owned();

    let mut rng = SmallRng::seed_from_u64(0x6b31_6c6c); // "k1ll"
    let mut cuts: Vec<u64> = Vec::new();
    let mut prev_end = geodur::wal::HEADER_BYTES;
    for r in &records {
        cuts.push(r.end_offset); // kill exactly at the record boundary
        let len = r.end_offset - prev_end;
        cuts.push(r.end_offset - 1); // one byte short: torn checksum
        for _ in 0..4 {
            cuts.push(prev_end + rng.gen_range(1..len)); // seeded mid-record
        }
        prev_end = r.end_offset;
    }
    cuts.sort_unstable();
    cuts.dedup();
    assert!(
        cuts.len() >= 100,
        "need at least 100 distinct crash points, got {} over {} records",
        cuts.len(),
        records.len()
    );

    for (k, &cut) in cuts.iter().enumerate() {
        let scratch = tmp_dir(&format!("cut{k}"));
        copy_dir(&base, &scratch);
        let seg = scratch.join("wal").join(&seg_name);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .and_then(|f| f.set_len(cut))
            .unwrap_or_else(|e| panic!("cut {k}: truncating to {cut} bytes: {e}"));

        let (recovered, summary) =
            DurableAdaptive::recover(&scratch, pinned_config(), Some(0.4), &env, 2)
                .unwrap_or_else(|e| panic!("cut {k} at byte {cut}: recovery failed: {e}"));
        let j = summary.next_window as usize;
        assert!(j < expected.len(), "cut {k}: recovered past the end of the run");
        let (exp_masters, exp_cost) = &expected[j];
        assert_eq!(
            recovered.masters(),
            &exp_masters[..],
            "cut {k} at byte {cut}: masters diverged at window boundary {j}"
        );
        if j > 0 {
            let (core, _) = recovered.inner().carried_parts().expect("committed boundary");
            assert_eq!(
                core.movement_cost().to_bits(),
                *exp_cost,
                "cut {k} at byte {cut}: movement cost not bit-exact at boundary {j}"
            );
            assert!(
                recovered
                    .inner()
                    .validate_carried(recovered.geo(), &env)
                    .unwrap_or_else(|e| panic!("cut {k}: validate_plan failed: {e}")),
                "cut {k}: nothing carried at boundary {j}"
            );
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// A crash image whose WAL ends in an uncommitted window must recover to
/// the previous boundary and accept the re-fed window, converging with the
/// uninterrupted run — the retry path a driver takes after rollback.
#[test]
fn rolled_back_window_can_be_refed() {
    let w = workload();
    let env = ec2_eight_regions();
    let t_opt = Duration::from_secs(60);
    let base = tmp_dir("refeed");

    let mut durable =
        DurableAdaptive::create(&base, pinned_config(), Some(0.4), w.geo0.clone(), &env, 0)
            .expect("create durable dir");
    let p0 = TrafficProfile::uniform(w.geo0.num_vertices(), 8.0);
    durable.window(&env, None, &[], &[], p0, 10.0, t_opt).expect("window 0");
    let (delta, locs, sizes) = &w.steps[0];
    let p = TrafficProfile::uniform(delta.new_num_vertices(), 8.0);
    durable.window(&env, Some(delta), locs, sizes, p.clone(), 10.0, t_opt).expect("window 1");
    let (core, _) = durable.inner().carried_parts().expect("carried");
    let final_masters = core.masters().to_vec();
    let final_cost = core.movement_cost().to_bits();
    drop(durable);

    // Truncate the log into window 1: keep its WindowStart, drop the rest.
    let (records, _) = geodur::wal::load(&base).expect("scan");
    let start_w1 =
        records.iter().find(|r| r.kind == 1 && r.lsn > 0).expect("window 1 start record");
    let segments = geodur::wal::segment_paths(&base).expect("segments");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&segments[0].1)
        .and_then(|f| f.set_len(start_w1.end_offset))
        .expect("truncate");

    let (mut recovered, summary) =
        DurableAdaptive::recover(&base, pinned_config(), Some(0.4), &env, 0).expect("recover");
    assert!(summary.rolled_back, "window 1 must roll back");
    assert_eq!(summary.next_window, 1);

    // Re-feed window 1; the retry must land where the first try landed.
    recovered.window(&env, Some(delta), locs, sizes, p, 10.0, t_opt).expect("re-fed window");
    let (core, _) = recovered.inner().carried_parts().expect("carried");
    assert_eq!(core.masters(), &final_masters[..], "re-fed window diverged");
    assert_eq!(core.movement_cost().to_bits(), final_cost);
    let _ = std::fs::remove_dir_all(&base);
}
