//! Reproducibility: every component is bit-for-bit deterministic for a
//! fixed seed, independent of thread count.

use geobase::ginger::GingerConfig;
use geograph::locality::LocalityConfig;
use geograph::{Dataset, GeoGraph};
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

fn setup(seed: u64) -> GeoGraph {
    GeoGraph::from_graph(
        Dataset::LiveJournal.generate(0.0005, seed),
        &LocalityConfig::paper_default(seed),
    )
}

#[test]
fn dataset_generation_is_reproducible() {
    let a = setup(9);
    let b = setup(9);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.locations, b.locations);
    assert_eq!(a.data_sizes, b.data_sizes);
}

#[test]
fn rlcut_deterministic_across_runs_and_threads() {
    let geo = setup(9);
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);

    let masters: Vec<Vec<geograph::DcId>> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let config = RlCutConfig::new(budget).with_seed(77).with_threads(threads);
            rlcut::partition(&geo, &env, profile.clone(), 10.0, &config)
                .state
                .core()
                .masters()
                .to_vec()
        })
        .collect();
    assert_eq!(masters[0], masters[1], "1 vs 2 threads diverged");
    assert_eq!(masters[1], masters[2], "2 vs 4 threads diverged");
}

#[test]
fn different_seeds_differ() {
    let geo = setup(9);
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let a =
        rlcut::partition(&geo, &env, profile.clone(), 10.0, &RlCutConfig::new(budget).with_seed(1))
            .state
            .core()
            .masters()
            .to_vec();
    let b = rlcut::partition(&geo, &env, profile, 10.0, &RlCutConfig::new(budget).with_seed(2))
        .state
        .core()
        .masters()
        .to_vec();
    // Different migration shuffles — plans differ (with overwhelming
    // probability on 2k+ vertices).
    assert_ne!(a, b);
}

#[test]
fn baselines_deterministic() {
    let geo = setup(10);
    let env = ec2_eight_regions();
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);

    let g1 = geobase::ginger(&geo, &env, GingerConfig::new(theta, 4), profile.clone(), 10.0);
    let g2 = geobase::ginger(&geo, &env, GingerConfig::new(theta, 4), profile.clone(), 10.0);
    assert_eq!(g1.core().masters(), g2.core().masters());

    let s1 = geobase::Spinner::partition(&geo, geobase::spinner::SpinnerConfig::default());
    let s2 = geobase::Spinner::partition(&geo, geobase::spinner::SpinnerConfig::default());
    assert_eq!(s1.assignment(), s2.assignment());

    let r1 = geobase::revolver(
        &geo,
        &env,
        geobase::revolver::RevolverConfig::default(),
        profile.clone(),
        10.0,
    );
    let r2 =
        geobase::revolver(&geo, &env, geobase::revolver::RevolverConfig::default(), profile, 10.0);
    assert_eq!(r1.assignment(), r2.assignment());
}
