//! Cost-budget trade-off exploration: sweep the WAN budget from 1 % to
//! 100 % of the centralization cost and watch RLCut trade transfer time
//! against spend (the Exp#2 mechanism, on a uk-2005-style web graph).
//!
//! ```sh
//! cargo run -p rlcut-examples --release --bin cost_budget
//! ```

use geograph::locality::LocalityConfig;
use geograph::{Dataset, GeoGraph};
use geopart::{HybridState, TrafficProfile};
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

fn main() {
    let env = ec2_eight_regions();
    let geo = GeoGraph::from_graph(
        Dataset::Uk2005.generate(0.0005, 11),
        &LocalityConfig::paper_default(11),
    );
    let centralization = geosim::cost::centralization_cost(&env, &geo.locations, &geo.data_sizes).1;
    println!(
        "UK-analog: {} vertices / {} edges; centralization would cost ${centralization:.4}\n",
        geo.num_vertices(),
        geo.num_edges()
    );

    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let natural = HybridState::natural(&geo, &env, 16, profile.clone(), 10.0).objective(&env);
    println!("natural placement: transfer {:.6} s/iter, cost $0\n", natural.transfer_time);

    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}  {:>10}",
        "budget", "transfer (s)", "vs natural", "cost ($)", "cost/budget"
    );
    for pct in [0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 1.00] {
        let budget = centralization * pct;
        let config = RlCutConfig::new(budget).with_seed(11);
        let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
        let obj = result.final_objective(&env);
        println!(
            "{:>7.0}%  {:>12.6}  {:>11.1}%  {:>10.4}  {:>10.2}",
            pct * 100.0,
            obj.transfer_time,
            (1.0 - obj.transfer_time / natural.transfer_time) * 100.0,
            obj.total_cost(),
            obj.total_cost() / budget,
        );
        assert!(obj.total_cost() <= budget * (1.0 + 1e-9), "budget violated");
    }
    println!("\nLooser budgets buy more master migrations and lower transfer time, with");
    println!("diminishing returns past ~40% — the paper's Exp#2 observation.");
}
