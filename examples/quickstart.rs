//! Quickstart: partition a synthetic geo-distributed social graph with
//! RLCut and compare the inter-DC transfer time against the natural
//! (no re-partitioning) placement.
//!
//! ```sh
//! cargo run -p rlcut-examples --release --bin quickstart
//! ```

use geograph::generators::{rmat, RmatConfig};
use geograph::locality::LocalityConfig;
use geograph::GeoGraph;
use geopart::{HybridState, TrafficProfile};
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

fn main() {
    // 1. A power-law graph whose vertices live in eight EC2 regions.
    let graph = rmat(&RmatConfig::social(20_000, 160_000), 7);
    let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(7));
    let env = ec2_eight_regions();
    println!(
        "graph: {} vertices, {} edges across {} DCs",
        geo.num_vertices(),
        geo.num_edges(),
        geo.num_dcs
    );

    // 2. The paper's default budget: 40 % of the cost of centralizing all
    //    input data in one DC.
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    println!("budget: ${budget:.4} (40% of centralization cost)");

    // 3. Partition with RLCut. PageRank-style traffic: 8 bytes per vertex
    //    per iteration, 10 iterations.
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let config = RlCutConfig::new(budget).with_seed(7);
    let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);

    // 4. Compare against the natural placement.
    let natural = HybridState::natural(&geo, &env, result.state.theta(), profile, 10.0);
    let before = natural.objective(&env);
    let after = result.final_objective(&env);
    println!("\nnatural placement : transfer time {:.6} s/iter", before.transfer_time);
    println!("RLCut plan        : transfer time {:.6} s/iter", after.transfer_time);
    println!(
        "improvement       : {:.1}%  (cost ${:.4} of ${budget:.4} budget)",
        (1.0 - after.transfer_time / before.transfer_time) * 100.0,
        after.total_cost()
    );
    println!(
        "training          : {} steps, {} migrations, {:?} overhead",
        result.steps.len(),
        result.total_migrations(),
        result.total_duration
    );
    assert!(after.transfer_time <= before.transfer_time);
    assert!(after.total_cost() <= budget);
}
