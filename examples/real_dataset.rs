//! Partition a *real* dataset: point this binary at any SNAP/LAW-style
//! edge list (e.g. the paper's LiveJournal: soc-LiveJournal1.txt) and it
//! runs the full pipeline — largest-WCC extraction, geo-assignment,
//! RLCut vs Ginger, plan persistence.
//!
//! ```sh
//! cargo run -p rlcut-examples --release --bin real_dataset -- <edge-list> [plan-out]
//! ```
//!
//! Without arguments it synthesizes a small edge-list file first, so the
//! example is runnable out of the box.

use std::path::PathBuf;

use geobase::ginger::GingerConfig;
use geograph::locality::LocalityConfig;
use geograph::transform::largest_wcc;
use geograph::GeoGraph;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let input: PathBuf = match args.next() {
        Some(path) => PathBuf::from(path),
        None => {
            // Self-contained demo: write a synthetic edge list and use it.
            let path = std::env::temp_dir().join("rlcut_demo_edges.txt");
            let g = geograph::generators::rmat(
                &geograph::generators::RmatConfig::social(10_000, 80_000),
                3,
            );
            geograph::io::write_edge_list(&g, &path).expect("write demo edge list");
            println!("(no input given — using a synthetic demo edge list at {path:?})\n");
            path
        }
    };
    let plan_out = args.next().map(PathBuf::from);

    // 1. Load, clean, and keep the largest weakly connected component.
    let raw = geograph::io::read_edge_list(&input).expect("read edge list");
    println!("loaded {:?}: {} vertices, {} edges", input, raw.num_vertices(), raw.num_edges());
    let (graph, _mapping) = largest_wcc(&raw);
    println!("largest WCC: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // 2. Geo-distribute over the 8 EC2 regions.
    let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(1));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let frac = geograph::locality::inter_dc_edge_fraction(&geo.graph, &geo.locations);
    println!("geo-distributed: {:.0}% of edges inter-DC, budget ${budget:.4}\n", frac * 100.0);

    // 3. Partition with Ginger and RLCut, compare.
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let (ginger, ginger_time) = {
        let t0 = std::time::Instant::now();
        let g = geobase::ginger(&geo, &env, GingerConfig::new(theta, 1), profile.clone(), 10.0);
        (g, t0.elapsed())
    };
    let config = RlCutConfig::new(budget).with_seed(1).with_t_opt(ginger_time * 20);
    let result = rlcut::partition(&geo, &env, profile, 10.0, &config);

    let g_obj = ginger.objective(&env);
    let r_obj = result.final_objective(&env);
    println!(
        "Ginger: transfer {:.6} s/iter, cost/budget {:.2}, λ {:.2}, overhead {:?}",
        g_obj.transfer_time,
        g_obj.total_cost() / budget,
        ginger.core().replication_factor(),
        ginger_time
    );
    println!(
        "RLCut : transfer {:.6} s/iter, cost/budget {:.2}, λ {:.2}, overhead {:?}",
        r_obj.transfer_time,
        r_obj.total_cost() / budget,
        result.state.core().replication_factor(),
        result.total_duration
    );
    println!(
        "RLCut vs Ginger: {:+.1}% transfer time, and RLCut is the only one inside the budget \
         (Ginger spends {:.1}x it)",
        (r_obj.transfer_time / g_obj.transfer_time - 1.0) * 100.0,
        g_obj.total_cost() / budget
    );

    // 4. Persist the trained plan.
    if let Some(path) = plan_out {
        geopart::plan_io::save_assignment(result.state.core().masters(), &path).expect("save plan");
        println!("\ntrained master assignment written to {path:?}");
        let reloaded = geopart::plan_io::load_assignment(&path).expect("reload plan");
        assert_eq!(reloaded, result.state.core().masters());
        println!("(reloaded and verified: {} masters)", reloaded.len());
    }
}
