//! Geo-distributed social-network analytics: run PageRank, SSSP and
//! subgraph isomorphism over a Twitter-like graph under several
//! partitioners, and report the paper's metrics (transfer time, cost,
//! replication factor) for each.
//!
//! ```sh
//! cargo run -p rlcut-examples --release --bin social_network
//! ```

use geobase::ginger::GingerConfig;
use geobase::PlanKind;
use geoengine::Algorithm;
use geograph::locality::LocalityConfig;
use geograph::{Dataset, GeoGraph};
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

fn main() {
    // A 0.05 %-scale Twitter analog (the full graph has 1.47 B edges).
    let geo = GeoGraph::from_graph(
        Dataset::Twitter.generate(0.0005, 42),
        &LocalityConfig::paper_default(42),
    );
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    println!(
        "TW-analog: {} vertices, {} edges; budget ${budget:.4}\n",
        geo.num_vertices(),
        geo.num_edges()
    );

    for algo in [Algorithm::pagerank(), Algorithm::sssp(&geo), Algorithm::subgraph_iso()] {
        let profile = algo.profile(&geo);
        let iters = algo.expected_iterations();
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);

        let plans: Vec<(&str, PlanKind)> = vec![
            (
                "HashPL",
                PlanKind::Hybrid(geobase::hashpl(&geo, &env, theta, profile.clone(), iters, 42)),
            ),
            (
                "Ginger",
                PlanKind::Hybrid(geobase::ginger(
                    &geo,
                    &env,
                    GingerConfig::new(theta, 42),
                    profile.clone(),
                    iters,
                )),
            ),
            (
                "RLCut",
                PlanKind::Hybrid(
                    rlcut::partition(
                        &geo,
                        &env,
                        profile.clone(),
                        iters,
                        &RlCutConfig::new(budget).with_seed(42),
                    )
                    .state,
                ),
            ),
        ];

        println!("--- {} ---", algo.name());
        for (name, plan) in &plans {
            let report = plan.execute(&geo, &env, &algo);
            let obj = plan.objective(&env);
            println!(
                "{name:8} transfer {:.5}s  cost/budget {:.2}  λ {:.2}  WAN {:.1} KB",
                report.transfer_time,
                obj.total_cost() / budget,
                plan.replication_factor(),
                report.wan_bytes / 1024.0,
            );
        }
        println!();
    }
}
