//! Adaptive re-partitioning of a growing graph: a day-long diurnal edge
//! stream (Fig 4 style) is applied in hourly windows; each window's
//! changes travel as a [`GraphDelta`] that RLCut's carried placement
//! state absorbs incrementally (work ∝ delta) while Spinner re-propagates
//! the touched neighborhoods. Prints the per-window transfer time,
//! overhead, and incremental work of both.
//!
//! ```sh
//! cargo run -p rlcut-examples --release --bin dynamic_stream
//! ```

use std::time::Duration;

use geobase::spinner::{Spinner, SpinnerConfig};
use geograph::dynamic::DiurnalModel;
use geograph::fxhash::mix64;
use geograph::locality::LocalityConfig;
use geograph::{DcId, GeoGraph, GraphDelta, VertexId};
use geopart::TrafficProfile;
use geosim::regions::ec2_eight_regions;
use rlcut::{AdaptiveRlCut, RlCutConfig};

fn main() {
    let env = ec2_eight_regions();
    let model = DiurnalModel { mean_rate: 800.0, seed: 9, ..Default::default() };
    let (initial, stream) = model.generate_day_stream(4000);
    println!(
        "initial graph: {} vertices / {} edges; {} events over 24h\n",
        initial.num_vertices(),
        initial.num_edges(),
        stream.len()
    );

    let locality = LocalityConfig::paper_default(9);
    // Natural locations persist across windows: a vertex's data is born in
    // one region and stays there; newcomers sample the same skewed
    // regional distribution.
    let region_weights = &locality.region_weights;
    let total_weight: f64 = region_weights.iter().sum();
    let home_of = |v: VertexId| -> DcId {
        let roll = (mix64(v as u64 ^ 0xfeed) % 10_000) as f64 / 10_000.0 * total_weight;
        let mut acc = 0.0;
        for (d, w) in region_weights.iter().enumerate() {
            acc += w;
            if roll < acc {
                return d as DcId;
            }
        }
        (region_weights.len() - 1) as DcId
    };
    let mut locations: Vec<DcId> = (0..initial.num_vertices() as VertexId).map(home_of).collect();
    let window_budget = Duration::from_millis(250);
    let mut adaptive = AdaptiveRlCut::new(RlCutConfig::new(1.0).with_seed(9), Some(0.4));
    let mut spinner: Option<Spinner> = None;

    let mut graph = initial;

    // Process 4-hour windows (6 windows over the day).
    println!(
        "{:>6}  {:>8}  {:>8}  {:>12}  {:>12}  {:>10}  {:>10}  {:>10}",
        "window",
        "vertices",
        "edges",
        "rlcut T",
        "spinner T",
        "rlcut ovh",
        "spin ovh",
        "delta work"
    );
    for (w, events) in stream.windows(4 * 3_600_000).enumerate() {
        // The window's net change, applied everywhere: CSR, RLCut's carried
        // placement state, and Spinner's label propagation seeds.
        let delta = GraphDelta::from_events(&graph, events);
        graph = graph.apply_delta(&delta);
        locations
            .extend((locations.len() as VertexId..graph.num_vertices() as VertexId).map(home_of));
        let sizes: Vec<u64> = (0..graph.num_vertices() as VertexId)
            .map(|v| 65536 + 256 * graph.out_degree(v) as u64)
            .collect();
        let geo = GeoGraph::new(graph.clone(), locations.clone(), sizes, locality.num_dcs);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);

        let report = adaptive
            .on_window_delta(&geo, &env, &delta, profile.clone(), 10.0, window_budget)
            .expect("window");

        // Spinner's labels feed the same hybrid-cut engine RLCut uses, so
        // both plans are measured on identical terms.
        let spin = {
            let t0 = std::time::Instant::now();
            match spinner.as_mut() {
                Some(s) => s.adapt_delta(&geo, &delta),
                None => spinner = Some(Spinner::partition(&geo, SpinnerConfig::default())),
            }
            let elapsed = t0.elapsed();
            let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
            let plan = geopart::HybridState::from_masters(
                &geo,
                &env,
                spinner.as_ref().unwrap().assignment().to_vec(),
                theta,
                profile.clone(),
                10.0,
            );
            (plan.objective(&env).transfer_time, elapsed)
        };

        println!(
            "{w:>6}  {:>8}  {:>8}  {:>12.6}  {:>12.6}  {:>9.3}s  {:>9.3}s  {:>10}",
            geo.num_vertices(),
            geo.num_edges(),
            report.transfer_time,
            spin.0,
            report.overhead.as_secs_f64(),
            spin.1.as_secs_f64(),
            report
                .delta_stats
                .map(|s| s.work_items().to_string())
                .unwrap_or_else(|| "rebuild".into()),
        );
    }
    println!("\nRLCut keeps every window inside the {window_budget:?} overhead target by");
    println!("retuning its agent sampling rate (Eq 14), and respects the 40% WAN budget;");
    println!("after the first window its placement state is never rebuilt — each delta is");
    println!("absorbed in work proportional to the touched vertices (last column).");
    println!("Spinner converges best-effort with no overhead or cost control. At this demo");
    println!("scale both produce comparable plans — the paper-protocol comparison is");
    println!("`cargo run -p geobench --release --bin exp5_dynamic`.");
}
